//! Two-phase dense primal simplex for the LP relaxation.
//!
//! The tableau is rebuilt per call — co-design instances are small
//! (hundreds of rows/columns) and branch & bound fixes variables by
//! adding bound rows, so an incremental *factorization* would buy
//! little — but the backing buffers need not be reallocated: a
//! [`SimplexWorkspace`] owns the bound vectors, row set, tableau, basis
//! and cost scratch, and [`solve_lp_with`] reuses them across calls.
//! Branch & bound threads one workspace through every node of its
//! search, which removes the dominant allocation churn of the MILP
//! partitioners.

use crate::{Cmp, IlpError, Problem, VarKind};

/// Result of one LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective of the relaxation.
    pub objective: f64,
    /// Value per original decision variable.
    pub values: Vec<f64>,
}

/// Extra bounds imposed by branch & bound: `(var, lo, hi)`.
pub(crate) type Fixing = (usize, f64, f64);

const EPS: f64 = 1e-9;

/// Default per-LP pivot budget ([`crate::SolveOptions::max_pivots`]).
/// Bland's rule guarantees termination, but degenerate instances can
/// take pathologically many pivots; exhausting the budget surfaces as
/// [`IlpError::PivotLimit`] — a property of the search, not the model.
pub const DEFAULT_MAX_PIVOTS: usize = 100_000;

/// One normalized constraint row of the standard-form build.
#[derive(Debug)]
struct Row {
    coeffs: Vec<f64>,
    cmp: Cmp,
    rhs: f64,
}

/// Hand out the next pooled row, zeroed to `n` coefficient columns.
/// Rows are recycled across [`solve_lp_with`] calls: only `used` grows
/// the pool, so a warm workspace rebuilds the standard form without
/// allocating.
fn next_row<'a>(rows: &'a mut Vec<Row>, used: &mut usize, n: usize) -> &'a mut Row {
    if *used == rows.len() {
        rows.push(Row {
            coeffs: Vec::new(),
            cmp: Cmp::Le,
            rhs: 0.0,
        });
    }
    let row = &mut rows[*used];
    *used += 1;
    row.coeffs.clear();
    row.coeffs.resize(n, 0.0);
    row.cmp = Cmp::Le;
    row.rhs = 0.0;
    row
}

/// Reusable scratch buffers for [`solve_lp_with`].
///
/// A fresh workspace is an empty set of buffers; every solve resizes
/// them to the instance at hand and leaves the capacity behind for the
/// next call. Branch & bound allocates one workspace per `solve` and
/// threads it through all B&B nodes, so the per-node tableau build costs
/// no allocations after the first node.
#[derive(Debug, Default)]
pub struct SimplexWorkspace {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Row buffer pool; only the first `rows_used` entries are live.
    rows: Vec<Row>,
    rows_used: usize,
    tableau: Vec<Vec<f64>>,
    basis: Vec<usize>,
    cost: Vec<f64>,
    artificial_cols: Vec<usize>,
}

impl SimplexWorkspace {
    /// An empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> SimplexWorkspace {
        SimplexWorkspace::default()
    }
}

/// Solve the LP relaxation of `p` with additional variable fixings,
/// allocating fresh scratch buffers.
///
/// Binary variables are relaxed to `[0, 1]` unless a fixing narrows them.
///
/// # Errors
///
/// [`IlpError::Infeasible`] when phase 1 cannot zero the artificials,
/// [`IlpError::Unbounded`] when phase 2 finds an unbounded ray.
pub fn solve_lp(p: &Problem, fixings: &[Fixing]) -> Result<LpSolution, IlpError> {
    solve_lp_with(p, fixings, &mut SimplexWorkspace::new())
}

/// [`solve_lp`] with caller-provided scratch buffers; identical results,
/// no per-call tableau allocations once the workspace is warm.
///
/// # Errors
///
/// Same as [`solve_lp`].
pub fn solve_lp_with(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
) -> Result<LpSolution, IlpError> {
    solve_lp_bounded(p, fixings, ws, DEFAULT_MAX_PIVOTS)
}

/// [`solve_lp_with`] with an explicit per-phase pivot budget.
///
/// # Errors
///
/// Same as [`solve_lp`], plus [`IlpError::PivotLimit`] when either
/// simplex phase exhausts `max_pivots` before terminating.
pub fn solve_lp_bounded(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    max_pivots: usize,
) -> Result<LpSolution, IlpError> {
    let n = p.costs.len();
    let SimplexWorkspace {
        lo,
        hi,
        rows,
        rows_used,
        tableau,
        basis,
        cost,
        artificial_cols,
    } = ws;

    // Effective bounds per variable.
    lo.clear();
    lo.resize(n, 0.0);
    hi.clear();
    hi.resize(n, 0.0);
    for (i, k) in p.kinds.iter().enumerate() {
        match *k {
            VarKind::Binary => {
                lo[i] = 0.0;
                hi[i] = 1.0;
            }
            VarKind::Continuous { lo: l, hi: h } => {
                lo[i] = l;
                hi[i] = h;
            }
        }
    }
    for &(v, l, h) in fixings {
        lo[v] = lo[v].max(l);
        hi[v] = hi[v].min(h);
        if lo[v] > hi[v] + EPS {
            return Err(IlpError::Infeasible);
        }
    }

    // Shift x = lo + x', x' in [0, hi-lo]; x' >= 0 suits standard form.
    // Rows: original constraints (rhs adjusted by lo), plus x' <= hi-lo
    // upper-bound rows for variables with a finite positive range.
    *rows_used = 0;
    for c in &p.constraints {
        let row = next_row(rows, rows_used, n);
        row.cmp = c.cmp;
        row.rhs = c.rhs;
        for &(v, a) in &c.terms {
            row.coeffs[v] += a;
            row.rhs -= a * lo[v];
        }
    }
    for i in 0..n {
        let range = hi[i] - lo[i];
        let row = next_row(rows, rows_used, n);
        row.coeffs[i] = 1.0;
        // Fixed variables (range ~ 0) are substituted away via lo; force
        // x' = 0 with an upper-bound row of rhs 0 (cheap to always add).
        row.rhs = if range <= EPS { 0.0 } else { range };
    }

    let m = *rows_used;
    let rows = &mut rows[..m];
    // Count auxiliary columns: slack (Le/Ge) + artificial (Ge/Eq, and Le
    // rows with negative rhs after normalization).
    // Normalize to rhs >= 0 first.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coeffs.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let slack_count = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
    let art_count = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let total = n + slack_count + art_count;

    // Tableau: m rows, total+1 columns (last is rhs), recycled row Vecs.
    while tableau.len() < m {
        tableau.push(Vec::new());
    }
    let t = &mut tableau[..m];
    for row in t.iter_mut() {
        row.clear();
        row.resize(total + 1, 0.0);
    }
    basis.clear();
    basis.resize(m, usize::MAX);
    artificial_cols.clear();
    let mut next_slack = n;
    let mut next_art = n + slack_count;
    for (ri, r) in rows.iter().enumerate() {
        t[ri][..n].copy_from_slice(&r.coeffs);
        t[ri][total] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                t[ri][next_slack] = 1.0;
                basis[ri] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                t[ri][next_slack] = -1.0;
                next_slack += 1;
                t[ri][next_art] = 1.0;
                basis[ri] = next_art;
                artificial_cols.push(next_art);
                next_art += 1;
            }
            Cmp::Eq => {
                t[ri][next_art] = 1.0;
                basis[ri] = next_art;
                artificial_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    if !artificial_cols.is_empty() {
        cost.clear();
        cost.resize(total, 0.0);
        for &c in artificial_cols.iter() {
            cost[c] = 1.0;
        }
        let obj = run_simplex(t, basis, cost, total, max_pivots)?;
        if obj > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        // Drive artificials out of the basis where possible.
        for ri in 0..m {
            if artificial_cols.contains(&basis[ri]) {
                // Find a non-artificial column with nonzero coefficient.
                if let Some(col) = (0..n + slack_count).find(|&c| t[ri][c].abs() > EPS) {
                    pivot(t, basis, ri, col, total);
                }
                // If none exists the row is redundant (all-zero), leave it.
            }
        }
    }

    // Phase 2: original costs on the shifted variables. Zero-out artificial
    // columns so they never re-enter.
    cost.clear();
    cost.resize(total, 0.0);
    cost[..n].copy_from_slice(&p.costs);
    for &c in artificial_cols.iter() {
        for row in t.iter_mut() {
            row[c] = 0.0;
        }
    }
    run_simplex(t, basis, cost, total, max_pivots)?;

    // Extract solution (`values` is the returned allocation; the shifted
    // scratch rides in front of it to keep the workspace small).
    let mut shifted = vec![0.0f64; total];
    for ri in 0..m {
        if basis[ri] < total {
            shifted[basis[ri]] = t[ri][total];
        }
    }
    let values: Vec<f64> = (0..n).map(|i| lo[i] + shifted[i]).collect();
    let objective: f64 = values.iter().zip(&p.costs).map(|(x, c)| x * c).sum();
    Ok(LpSolution { objective, values })
}

/// Run primal simplex on the tableau with the given cost vector; returns
/// the objective value of the cost vector at the final basis.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    total: usize,
    max_pivots: usize,
) -> Result<f64, IlpError> {
    let m = t.len();
    // Reduced costs: z_j - c_j computed on demand from basis costs.
    for _ in 0..max_pivots {
        // Compute y = c_B (costs of basic vars), reduced cost for column j:
        // d_j = c_j - sum_i c_{B_i} * t[i][j].
        let mut entering = usize::MAX;
        for j in 0..total {
            let mut d = costs[j];
            for i in 0..m {
                let cb = if basis[i] < total {
                    costs[basis[i]]
                } else {
                    0.0
                };
                if cb != 0.0 {
                    d -= cb * t[i][j];
                }
            }
            if d < -1e-7 {
                // Bland's rule: first improving column.
                entering = j;
                break;
            }
        }
        if entering == usize::MAX {
            // Optimal: objective = sum over basis of c_B * rhs.
            let mut obj = 0.0;
            for i in 0..m {
                if basis[i] < total {
                    obj += costs[basis[i]] * t[i][total];
                }
            }
            return Ok(obj);
        }
        // Ratio test (Bland: smallest basis index tie-break).
        let mut leaving = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][entering] > EPS {
                let ratio = t[i][total] / t[i][entering];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving != usize::MAX
                        && basis[i] < basis[leaving])
                {
                    best_ratio = ratio;
                    leaving = i;
                }
            }
        }
        if leaving == usize::MAX {
            return Err(IlpError::Unbounded);
        }
        pivot(t, basis, leaving, entering, total);
    }
    // Pivot budget exhausted: the search ran out, not the model — report
    // it truthfully instead of masquerading as an unbounded objective.
    Err(IlpError::PivotLimit)
}

// Index loops keep the split borrows of the tableau obvious; iterator
// forms would need per-pivot row clones.
#[allow(clippy::needless_range_loop)]
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let m = t.len();
    let pv = t[row][col];
    debug_assert!(pv.abs() > EPS, "pivot on (near-)zero element");
    for j in 0..=total {
        t[row][j] /= pv;
    }
    for i in 0..m {
        if i != row {
            let factor = t[i][col];
            if factor.abs() > EPS {
                for j in 0..=total {
                    t[i][j] -= factor * t[row][j];
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    #[test]
    fn simple_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => min -3x - 2y = -12 (x=4,y=0).
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 100.0, -3.0);
        let y = p.add_continuous(0.0, 100.0, -2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!(
            (sol.objective + 12.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x s.t. x >= 3  => 3.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_phase1() {
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(solve_lp(&p, &[]).unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn fixings_narrow_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_binary(-1.0);
        // Relaxation alone would take x = 1; fix to 0.
        let sol = solve_lp(&p, &[(0, 0.0, 0.0)]).unwrap();
        assert!(sol.values[0].abs() < 1e-9);
        let _ = x;
    }

    #[test]
    fn contradictory_fixings_infeasible() {
        let mut p = Problem::minimize();
        let _x = p.add_binary(1.0);
        assert_eq!(
            solve_lp(&p, &[(0, 1.0, 1.0), (0, 0.0, 0.0)]).unwrap_err(),
            IlpError::Infeasible
        );
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -2  (i.e. x >= 2).
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, -1.0)], Cmp::Le, -2.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x in [2, 5], y in [1, 4], x + y >= 4 => 4 at (3,1) or (2,2).
        let mut p = Problem::minimize();
        let x = p.add_continuous(2.0, 5.0, 1.0);
        let y = p.add_continuous(1.0, 4.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!(
            (sol.objective - 4.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(sol.values[0] >= 2.0 - 1e-9);
        assert!(sol.values[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn warm_workspace_matches_fresh_solves() {
        // One workspace across differently-shaped problems must give the
        // same answers as fresh per-call buffers.
        let mut ws = SimplexWorkspace::new();
        for vars in [1usize, 3, 2, 5] {
            let mut p = Problem::minimize();
            let ids: Vec<_> = (0..vars)
                .map(|i| p.add_continuous(0.0, 10.0, -((i + 1) as f64)))
                .collect();
            let terms: Vec<_> = ids.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, 4.0);
            p.add_constraint(&[(ids[0], 1.0)], Cmp::Ge, 1.0);
            let fresh = solve_lp(&p, &[]).unwrap();
            let warm = solve_lp_with(&p, &[], &mut ws).unwrap();
            assert_eq!(fresh.values, warm.values, "vars={vars}");
            assert!((fresh.objective - warm.objective).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints; Bland's rule must still terminate.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, -1.0);
        for _ in 0..5 {
            p.add_constraint(&[(x, 1.0)], Cmp::Le, 7.0);
        }
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective + 7.0).abs() < 1e-6);
    }
}
