//! A small mixed integer linear programming (MILP) substrate.
//!
//! COOL performs hardware/software partitioning by solving a MILP
//! (Niemann & Marwedel, *An Algorithm for Hardware/Software Partitioning
//! using Mixed Integer Linear Programming*, DAES 1997 — reference \[4\] of
//! the reproduced paper). No MILP solver exists in the allowed dependency
//! set, so this crate implements one from scratch:
//!
//! * a **two-phase dense primal simplex** for the LP relaxation
//!   ([`simplex`]) on a flat stride-indexed tableau, with steepest-edge
//!   pricing by default and a Bland's-rule anti-cycling fallback
//!   ([`PricingRule`]), basis warm starts for re-solves one bound flip
//!   apart, and row-parallel pricing/update kernels, and
//! * **branch & bound** over the binary variables ([`branch_bound`]),
//!   most-fractional branching, best-bound pruning and node limits,
//!   child LPs warm-started from the parent's optimal basis; parallel
//!   under [`SolveOptions::jobs`] with deterministic best-bound
//!   merging (lower objective first, lexicographically smallest
//!   assignment on ties), so the returned [`Solution`] is identical for
//!   every worker count.
//!
//! The solver is deliberately sized for co-design instances (hundreds of
//! variables and constraints), not for industrial LPs.
//!
//! # Example
//!
//! ```
//! use cool_ilp::{Cmp, Problem, SolveOptions};
//!
//! # fn main() -> Result<(), cool_ilp::IlpError> {
//! // Knapsack: max 3a + 4b  s.t. 2a + 3b <= 4  ==  min -3a - 4b.
//! let mut p = Problem::minimize();
//! let a = p.add_binary(-3.0);
//! let b = p.add_binary(-4.0);
//! p.add_constraint(&[(a, 2.0), (b, 3.0)], Cmp::Le, 4.0);
//! let sol = p.solve(&SolveOptions::default())?;
//! assert_eq!(sol.objective.round() as i64, -4); // picks b
//! # Ok(())
//! # }
//! ```

pub mod branch_bound;
pub mod simplex;

use std::fmt;

/// Comparison sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `sum a_i x_i <= b`
    Le,
    /// `sum a_i x_i >= b`
    Ge,
    /// `sum a_i x_i == b`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        })
    }
}

/// Index of a decision variable within one [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Kind and bounds of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Binary 0/1 variable (subject to branch & bound).
    Binary,
    /// Continuous variable with inclusive bounds `lo <= x <= hi`, `lo >= 0`.
    Continuous {
        /// Lower bound (must be >= 0; shift your model if necessary).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal (within tolerances).
    Optimal,
    /// No feasible assignment exists.
    Infeasible,
    /// The relaxation is unbounded below.
    Unbounded,
    /// Node or iteration limit hit; `Solution` carries the incumbent if any.
    LimitReached,
}

/// Errors surfaced by the solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IlpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The simplex pivot budget ([`SolveOptions::max_pivots`]) was
    /// exhausted before an LP solve terminated. Distinct from
    /// [`IlpError::Unbounded`]: an unbounded ray is a property of the
    /// *model*, while a pivot-limit exhaustion is a property of the
    /// *search* (degenerate instances cycling through near-tie bases), and
    /// the remedies differ — reformulate vs. raise the budget.
    PivotLimit,
    /// The node limit was exhausted before any integer-feasible solution
    /// was found.
    NoIncumbent,
    /// A constraint referenced an unknown variable id.
    UnknownVar(usize),
    /// A continuous variable was declared with `lo > hi` or `lo < 0`.
    BadBounds {
        /// The offending variable.
        var: usize,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => f.write_str("problem is infeasible"),
            IlpError::Unbounded => f.write_str("objective is unbounded"),
            IlpError::PivotLimit => {
                f.write_str("simplex pivot limit exhausted (degenerate instance; raise max_pivots)")
            }
            IlpError::NoIncumbent => {
                f.write_str("node limit reached before an integer solution was found")
            }
            IlpError::UnknownVar(v) => write!(f, "constraint references unknown variable x{v}"),
            IlpError::BadBounds { var } => write!(f, "variable x{var} has invalid bounds"),
        }
    }
}

impl std::error::Error for IlpError {}

/// A MILP in minimization form.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) costs: Vec<f64>,
    pub(crate) kinds: Vec<VarKind>,
    pub(crate) constraints: Vec<Constraint>,
}

/// Entering-column rule of the primal simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingRule {
    /// Steepest-edge pricing: pick the candidate maximizing
    /// `d_j² / (1 + ‖B⁻¹A_j‖²)`. Far fewer pivots than Bland's rule on
    /// degenerate instances; termination is guaranteed by an
    /// anti-cycling monitor that hands the choice to [`Self::Bland`]
    /// after a run of pivots without objective progress (and hands it
    /// back on the next strict improvement).
    #[default]
    SteepestEdge,
    /// Bland's rule throughout: lowest-index improving column. Provably
    /// cycle-free, usually slower; kept as a diagnostic baseline.
    Bland,
}

impl fmt::Display for PricingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PricingRule::SteepestEdge => "steepest",
            PricingRule::Bland => "bland",
        })
    }
}

impl std::str::FromStr for PricingRule {
    type Err = String;

    fn from_str(s: &str) -> Result<PricingRule, String> {
        match s {
            "steepest" | "steepest-edge" => Ok(PricingRule::SteepestEdge),
            "bland" => Ok(PricingRule::Bland),
            other => Err(format!(
                "unknown pricing rule '{other}' (expected steepest|bland)"
            )),
        }
    }
}

/// Knobs for [`Problem::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Maximum branch & bound nodes to explore.
    pub max_nodes: usize,
    /// Maximum simplex pivots per LP solve. Exhausting the budget surfaces
    /// as [`IlpError::PivotLimit`] (degenerate instances cycling through
    /// near-tie bases), never as a spurious [`IlpError::Unbounded`].
    pub max_pivots: usize,
    /// Integrality tolerance: |x - round(x)| below this counts as integer.
    pub int_tol: f64,
    /// Worker threads for the branch & bound search (`1` = serial, `0` =
    /// all available cores). For a search that runs to completion
    /// ([`Status::Optimal`]) the returned objective, values and status
    /// are identical for every worker count — only wall-clock and
    /// `nodes_explored` change — thanks to the deterministic best-bound
    /// merge in [`branch_bound`]. A node-limit-truncated search returns
    /// whatever incumbent the budget reached, which under `jobs > 1`
    /// depends on worker scheduling (and is flagged
    /// [`Status::LimitReached`]).
    pub jobs: usize,
    /// Entering-column rule of the primal simplex. Artifact-invariant on
    /// completed solves: objective and status are identical across
    /// rules, the pivot *path* (and therefore wall-clock and
    /// [`Solution::pivots`]) differs.
    pub pricing: PricingRule,
    /// Warm-start child LPs from the parent node's optimal basis (a
    /// bound flip usually re-solves in a handful of dual pivots instead
    /// of a cold two-phase solve). Disable for a cold-solve baseline;
    /// the returned [`Solution`] is identical either way.
    pub warm_start: bool,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            max_nodes: 200_000,
            max_pivots: simplex::DEFAULT_MAX_PIVOTS,
            int_tol: 1e-6,
            jobs: 1,
            pricing: PricingRule::SteepestEdge,
            warm_start: true,
        }
    }
}

/// The result of a successful solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value of the returned assignment.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Whether optimality was proven or a limit intervened.
    pub status: Status,
    /// The best (lowest) LP bound among the subtrees the search had not
    /// finished exploring when it stopped — a valid lower bound on the
    /// true optimum. Equal to `objective` for a completed
    /// ([`Status::Optimal`]) solve; strictly informative for
    /// [`Status::LimitReached`], where `objective - best_bound` bounds how
    /// far the incumbent can be from optimal. (For a truncated solve under
    /// `jobs > 1` the value depends on worker scheduling, exactly like the
    /// incumbent itself.)
    pub best_bound: f64,
    /// Branch & bound nodes explored.
    pub nodes_explored: usize,
    /// Total simplex pivots priced across every LP the search solved
    /// (primal and dual; warm-start basis refactorizations excluded).
    /// Diagnostic only — like `nodes_explored` it varies with `jobs`
    /// and pricing rule even when the solution does not.
    pub pivots: usize,
}

impl Solution {
    /// The value of `v`, rounded to the nearest integer (for binaries).
    #[must_use]
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }

    /// The raw value of `v`.
    #[must_use]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Relative optimality gap: how far (as a fraction of the larger of
    /// the incumbent's and the bound's magnitudes — the standard MIP gap
    /// normalization, which stays meaningful when the incumbent objective
    /// is near zero) the true optimum can lie below the returned
    /// incumbent, derived from [`Solution::best_bound`]. `0.0` for a
    /// completed solve; "the incumbent is within `gap × 100` % of
    /// optimal" for a truncated one.
    #[must_use]
    pub fn optimality_gap(&self) -> f64 {
        let slack = (self.objective - self.best_bound).max(0.0);
        if slack == 0.0 {
            0.0
        } else {
            slack / self.objective.abs().max(self.best_bound.abs()).max(1e-9)
        }
    }
}

impl Problem {
    /// Create an empty minimization problem.
    #[must_use]
    pub fn minimize() -> Problem {
        Problem::default()
    }

    /// Add a binary decision variable with objective coefficient `cost`.
    pub fn add_binary(&mut self, cost: f64) -> VarId {
        self.costs.push(cost);
        self.kinds.push(VarKind::Binary);
        VarId(self.costs.len() - 1)
    }

    /// Add a continuous variable `lo <= x <= hi` with coefficient `cost`.
    ///
    /// Bounds are validated at solve time ([`IlpError::BadBounds`]).
    pub fn add_continuous(&mut self, lo: f64, hi: f64, cost: f64) -> VarId {
        self.costs.push(cost);
        self.kinds.push(VarKind::Continuous { lo, hi });
        VarId(self.costs.len() - 1)
    }

    /// Add the linear constraint `sum coeff*var cmp rhs`.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            cmp,
            rhs,
        });
    }

    /// Number of decision variables.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Solve to proven optimality (or until the node limit).
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] / [`IlpError::Unbounded`] for hopeless
    /// models, [`IlpError::NoIncumbent`] if the node limit is hit before
    /// any integer-feasible point is found, [`IlpError::UnknownVar`] /
    /// [`IlpError::BadBounds`] for malformed models.
    pub fn solve(&self, options: &SolveOptions) -> Result<Solution, IlpError> {
        self.check()?;
        branch_bound::solve(self, options)
    }

    /// Solve only the LP relaxation (binaries relaxed to `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Same model errors as [`Problem::solve`], plus
    /// [`IlpError::Infeasible`] / [`IlpError::Unbounded`].
    pub fn solve_relaxation(&self) -> Result<Solution, IlpError> {
        self.check()?;
        let mut ws = simplex::SimplexWorkspace::new();
        let lp = simplex::solve_lp_with(self, &[], &mut ws)?;
        Ok(Solution {
            objective: lp.objective,
            best_bound: lp.objective,
            values: lp.values,
            status: Status::Optimal,
            nodes_explored: 0,
            pivots: ws.stats().pivots,
        })
    }

    fn check(&self) -> Result<(), IlpError> {
        for (i, k) in self.kinds.iter().enumerate() {
            if let VarKind::Continuous { lo, hi } = k {
                if *lo < 0.0 || lo > hi {
                    return Err(IlpError::BadBounds { var: i });
                }
            }
        }
        for c in &self.constraints {
            for &(v, _) in &c.terms {
                if v >= self.costs.len() {
                    return Err(IlpError::UnknownVar(v));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_optimum() {
        let mut p = Problem::minimize();
        let a = p.add_binary(-3.0);
        let b = p.add_binary(-4.0);
        p.add_constraint(&[(a, 2.0), (b, 3.0)], Cmp::Le, 4.0);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.objective.round() as i64, -4);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(a), 0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let a = p.add_binary(1.0);
        p.add_constraint(&[(a, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(
            p.solve(&SolveOptions::default()).unwrap_err(),
            IlpError::Infeasible
        );
    }

    #[test]
    fn bad_bounds_detected() {
        let mut p = Problem::minimize();
        let _ = p.add_continuous(5.0, 1.0, 0.0);
        assert!(matches!(
            p.solve(&SolveOptions::default()),
            Err(IlpError::BadBounds { .. })
        ));
    }

    #[test]
    fn unknown_var_detected() {
        let mut p = Problem::minimize();
        let a = p.add_binary(1.0);
        let ghost = VarId(7);
        p.add_constraint(&[(a, 1.0), (ghost, 1.0)], Cmp::Le, 1.0);
        assert_eq!(
            p.solve(&SolveOptions::default()).unwrap_err(),
            IlpError::UnknownVar(7)
        );
    }

    #[test]
    fn continuous_lp() {
        // min -x - y  s.t. x + y <= 10, x in [0,6], y in [0,7] => -10.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 6.0, -1.0);
        let y = p.add_continuous(0.0, 7.0, -1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        assert!(
            (sol.objective + 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t. x + y = 5, x - y = 1  => (3, 2), objective 5.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 100.0, 1.0);
        let y = p.add_continuous(0.0, 100.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
        assert!((sol.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_milp() {
        // Assign 3 items to 2 bins minimizing cost, each item exactly once,
        // bin capacity 2 items.
        let costs = [[1.0, 3.0], [2.0, 1.0], [3.0, 2.0]];
        let mut p = Problem::minimize();
        let mut x = Vec::new();
        for item_costs in costs {
            let row: Vec<VarId> = item_costs.iter().map(|&c| p.add_binary(c)).collect();
            p.add_constraint(&[(row[0], 1.0), (row[1], 1.0)], Cmp::Eq, 1.0);
            x.push(row);
        }
        for bin in 0..2 {
            let terms: Vec<(VarId, f64)> = x.iter().map(|row| (row[bin], 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, 2.0);
        }
        let sol = p.solve(&SolveOptions::default()).unwrap();
        // Optimal: item0->bin0 (1), item1->bin1 (1), item2->bin1 (2) = 4.
        assert_eq!(sol.objective.round() as i64, 4);
    }
}
