//! Seeded property battery for the pricing rules: steepest-edge and
//! Bland's rule are different simplex search paths to the *same* exact
//! answer. On random knapsack, equality and partitioning-shaped
//! instances both rules must match brute-force enumeration, return the
//! identical `Solution` at `jobs ∈ {1, 2, 4}`, and agree with each other
//! bit-for-bit on every completed solve (the property that lets the
//! pricing knob stay out of the flow engine's content hashes). A
//! cycling-prone degenerate instance must terminate far under the pivot
//! budget with steepest edge still doing the bulk of the work — the
//! anti-cycling stall counter may *visit* Bland's rule, never move in.

use cool_ilp::simplex::{solve_lp_opts, LpOptions, SimplexWorkspace, DEFAULT_MAX_PIVOTS};
use cool_ilp::{Cmp, PricingRule, Problem, Solution, SolveOptions, Status, VarId};

/// Tiny deterministic xorshift64* generator (the battery must not pull
/// in dependencies; cool_ilp is std-only).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One constraint row as plain data: terms, sense, right-hand side.
type Row = (Vec<(usize, f64)>, Cmp, f64);

/// One battery instance, kept as plain data so brute force can evaluate
/// constraints on arbitrary points.
struct Instance {
    costs: Vec<f64>,
    constraints: Vec<Row>,
}

impl Instance {
    fn build(&self) -> Problem {
        let mut p = Problem::minimize();
        let vars: Vec<VarId> = self.costs.iter().map(|&c| p.add_binary(c)).collect();
        for (terms, cmp, rhs) in &self.constraints {
            let t: Vec<(VarId, f64)> = terms.iter().map(|&(v, a)| (vars[v], a)).collect();
            p.add_constraint(&t, *cmp, *rhs);
        }
        p
    }
}

fn brute_force(inst: &Instance) -> Option<f64> {
    let n = inst.costs.len();
    assert!(n <= 16);
    let mut best: Option<f64> = None;
    'outer: for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        for (terms, cmp, rhs) in &inst.constraints {
            let lhs: f64 = terms.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match cmp {
                Cmp::Le => lhs <= rhs + 1e-9,
                Cmp::Ge => lhs >= rhs - 1e-9,
                Cmp::Eq => (lhs - rhs).abs() < 1e-9,
            };
            if !ok {
                continue 'outer;
            }
        }
        let obj: f64 = x.iter().zip(&inst.costs).map(|(v, c)| v * c).sum();
        if best.map(|b| obj < b).unwrap_or(true) {
            best = Some(obj);
        }
    }
    best
}

fn random_knapsack(rng: &mut Rng, n: usize) -> Instance {
    let costs: Vec<f64> = (0..n).map(|_| -((rng.below(6) + 1) as f64)).collect();
    let weights: Vec<f64> = (0..n).map(|_| (rng.below(5) + 1) as f64).collect();
    let cap = weights.iter().sum::<f64>() * 0.45;
    Instance {
        costs,
        constraints: vec![(weights.iter().copied().enumerate().collect(), Cmp::Le, cap)],
    }
}

fn random_equality(rng: &mut Rng, n: usize) -> Instance {
    let costs: Vec<f64> = (0..n).map(|_| rng.below(7) as f64 - 3.0).collect();
    let k = (1 + rng.below((n - 1) as u64)) as f64;
    Instance {
        costs,
        constraints: vec![((0..n).map(|i| (i, 1.0)).collect(), Cmp::Eq, k)],
    }
}

/// Partitioning-shaped instance: items assigned to exactly one of two
/// bins, per-bin capacity rows — the structure of the MILP partitioner.
fn random_partitioning(rng: &mut Rng, items: usize) -> Instance {
    let mut costs = Vec::new();
    let mut constraints: Vec<Row> = Vec::new();
    let mut sizes = Vec::new();
    for i in 0..items {
        costs.push((rng.below(8) + 1) as f64);
        costs.push((rng.below(8) + 1) as f64);
        constraints.push((vec![(2 * i, 1.0), (2 * i + 1, 1.0)], Cmp::Eq, 1.0));
        sizes.push((rng.below(4) + 1) as f64);
    }
    for bin in 0..2usize {
        let terms: Vec<(usize, f64)> = (0..items).map(|i| (2 * i + bin, sizes[i])).collect();
        let cap = sizes.iter().sum::<f64>() * 0.7;
        constraints.push((terms, Cmp::Le, cap));
    }
    Instance { costs, constraints }
}

fn solve(inst: &Instance, pricing: PricingRule, jobs: usize) -> Solution {
    inst.build()
        .solve(&SolveOptions {
            pricing,
            jobs,
            ..SolveOptions::default()
        })
        .expect("battery instances are feasible")
}

fn assert_identical(a: &Solution, b: &Solution, what: &str) {
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{what}: objective differs ({} vs {})",
        a.objective,
        b.objective
    );
    let ab: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: values differ");
    assert_eq!(a.status, b.status, "{what}: status differs");
    assert_eq!(
        a.best_bound.to_bits(),
        b.best_bound.to_bits(),
        "{what}: best_bound differs"
    );
}

/// The shared battery: brute force anchors steepest edge, then Bland and
/// every job count must reproduce the identical `Solution`.
fn run_battery(mk: impl Fn(&mut Rng) -> Instance, seeds: std::ops::Range<u64>, what: &str) {
    for seed in seeds {
        let mut rng = Rng::new(seed);
        let inst = mk(&mut rng);
        let steepest = solve(&inst, PricingRule::SteepestEdge, 1);
        let expected = brute_force(&inst).expect("battery instances are feasible");
        assert!(
            (steepest.objective - expected).abs() < 1e-6,
            "{what} seed {seed}: steepest {} vs brute force {expected}",
            steepest.objective
        );
        assert_eq!(steepest.status, Status::Optimal, "{what} seed {seed}");
        let bland = solve(&inst, PricingRule::Bland, 1);
        assert_identical(
            &steepest,
            &bland,
            &format!("{what} seed {seed} bland-vs-steepest"),
        );
        for pricing in [PricingRule::SteepestEdge, PricingRule::Bland] {
            for jobs in [2usize, 4] {
                let par = solve(&inst, pricing, jobs);
                assert_identical(
                    &steepest,
                    &par,
                    &format!("{what} seed {seed} {pricing} jobs {jobs}"),
                );
            }
        }
    }
}

#[test]
fn pricing_rules_agree_on_random_knapsacks() {
    run_battery(
        |rng| {
            let n = 6 + rng.below(5) as usize;
            random_knapsack(rng, n)
        },
        0..12,
        "knapsack",
    );
}

#[test]
fn pricing_rules_agree_on_equality_instances() {
    run_battery(
        |rng| {
            let n = 5 + rng.below(4) as usize;
            random_equality(rng, n)
        },
        100..110,
        "equality",
    );
}

#[test]
fn pricing_rules_agree_on_partitioning_instances() {
    run_battery(
        |rng| {
            let items = 3 + rng.below(4) as usize;
            random_partitioning(rng, items)
        },
        200..208,
        "partitioning",
    );
}

#[test]
fn cycling_prone_instance_terminates_without_permanent_bland_fallback() {
    // A nested stack of mutually redundant capacity rows — the classic
    // shape that stalls naive Dantzig pricing in degenerate pivots. The
    // LP must terminate far under the budget, and the stall counter must
    // have handed at most a minority of pivots to Bland's rule: the
    // fallback is an escape hatch that re-arms, not a one-way door.
    let mut p = Problem::minimize();
    let n = 16;
    let vars: Vec<VarId> = (0..n).map(|_| p.add_continuous(0.0, 1.0, -1.0)).collect();
    for k in 1..=n {
        let terms: Vec<(VarId, f64)> = vars.iter().take(k).map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Le, k as f64 / 2.0);
        // A parallel family of scaled duplicates thickens the degeneracy.
        let scaled: Vec<(VarId, f64)> = vars.iter().take(k).map(|&v| (v, 2.0)).collect();
        p.add_constraint(&scaled, Cmp::Le, k as f64);
    }
    let mut ws = SimplexWorkspace::new();
    let sol = solve_lp_opts(&p, &[], &mut ws, &LpOptions::default())
        .expect("degenerate stack is feasible");
    assert!(sol.objective.is_finite());
    let stats = ws.stats();
    assert!(
        stats.pivots < DEFAULT_MAX_PIVOTS / 10,
        "degenerate stack must terminate far under the budget: {stats:?}"
    );
    assert!(
        stats.bland_pivots <= stats.pivots / 2,
        "Bland fallback must not take over the solve: {stats:?}"
    );
}
