//! Seeded property battery: the parallel branch & bound must return the
//! same `Solution` — objective bits, value bits, status — for `jobs ∈
//! {1, 2, 4}` on random knapsack, equality and partitioning-shaped
//! instances, and the serial answer must match brute-force enumeration.
//! Plus a node-limit-under-parallelism check: truncation may change
//! *whether* the limit path is taken, never crash or return an
//! infeasible incumbent.

use cool_ilp::{Cmp, IlpError, Problem, Solution, SolveOptions, Status, VarId};

/// Tiny deterministic xorshift64* generator (the battery must not pull
/// in dependencies; cool_ilp is std-only).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One constraint row as plain data: terms, sense, right-hand side.
type Row = (Vec<(usize, f64)>, Cmp, f64);

/// One battery instance, kept as plain data so brute force can evaluate
/// constraints on arbitrary points (`Problem` exposes no constraint
/// iterator).
struct Instance {
    costs: Vec<f64>,
    constraints: Vec<Row>,
}

impl Instance {
    fn build(&self) -> (Problem, Vec<VarId>) {
        let mut p = Problem::minimize();
        let vars: Vec<VarId> = self.costs.iter().map(|&c| p.add_binary(c)).collect();
        for (terms, cmp, rhs) in &self.constraints {
            let t: Vec<(VarId, f64)> = terms.iter().map(|&(v, a)| (vars[v], a)).collect();
            p.add_constraint(&t, *cmp, *rhs);
        }
        (p, vars)
    }
}

fn brute_force_instance(inst: &Instance) -> Option<f64> {
    let n = inst.costs.len();
    assert!(n <= 16);
    let mut best: Option<f64> = None;
    'outer: for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        for (terms, cmp, rhs) in &inst.constraints {
            let lhs: f64 = terms.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match cmp {
                Cmp::Le => lhs <= rhs + 1e-9,
                Cmp::Ge => lhs >= rhs - 1e-9,
                Cmp::Eq => (lhs - rhs).abs() < 1e-9,
            };
            if !ok {
                continue 'outer;
            }
        }
        let obj: f64 = x.iter().zip(&inst.costs).map(|(v, c)| v * c).sum();
        if best.map(|b| obj < b).unwrap_or(true) {
            best = Some(obj);
        }
    }
    best
}

/// Random knapsack: small integer costs/weights so exact objective ties
/// between distinct assignments are common — the case the deterministic
/// merge exists for.
fn random_knapsack(rng: &mut Rng, n: usize) -> Instance {
    let costs: Vec<f64> = (0..n).map(|_| -((rng.below(6) + 1) as f64)).collect();
    let weights: Vec<f64> = (0..n).map(|_| (rng.below(5) + 1) as f64).collect();
    let cap = weights.iter().sum::<f64>() * 0.45;
    Instance {
        costs,
        constraints: vec![(weights.iter().copied().enumerate().collect(), Cmp::Le, cap)],
    }
}

/// Random cardinality-constrained instance (equality row).
fn random_equality(rng: &mut Rng, n: usize) -> Instance {
    let costs: Vec<f64> = (0..n).map(|_| rng.below(7) as f64 - 3.0).collect();
    let k = (1 + rng.below((n - 1) as u64)) as f64;
    Instance {
        costs,
        constraints: vec![((0..n).map(|i| (i, 1.0)).collect(), Cmp::Eq, k)],
    }
}

/// Partitioning-shaped instance: items assigned to exactly one of two
/// bins, per-bin capacity rows — the structure of the MILP partitioner.
fn random_partitioning(rng: &mut Rng, items: usize) -> Instance {
    let mut costs = Vec::new();
    let mut constraints: Vec<Row> = Vec::new();
    let mut sizes = Vec::new();
    for i in 0..items {
        // x[i][0], x[i][1] at indices 2i, 2i+1.
        costs.push((rng.below(8) + 1) as f64);
        costs.push((rng.below(8) + 1) as f64);
        constraints.push((vec![(2 * i, 1.0), (2 * i + 1, 1.0)], Cmp::Eq, 1.0));
        sizes.push((rng.below(4) + 1) as f64);
    }
    for bin in 0..2usize {
        let terms: Vec<(usize, f64)> = (0..items).map(|i| (2 * i + bin, sizes[i])).collect();
        let cap = sizes.iter().sum::<f64>() * 0.7;
        constraints.push((terms, Cmp::Le, cap));
    }
    Instance { costs, constraints }
}

fn solve_with_jobs(inst: &Instance, jobs: usize) -> Solution {
    let (p, _) = inst.build();
    p.solve(&SolveOptions {
        jobs,
        ..SolveOptions::default()
    })
    .expect("battery instances are feasible")
}

fn assert_identical(a: &Solution, b: &Solution, what: &str) {
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{what}: objective differs ({} vs {})",
        a.objective,
        b.objective
    );
    let ab: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: values differ");
    assert_eq!(a.status, b.status, "{what}: status differs");
}

#[test]
fn parallel_equals_serial_on_random_knapsacks() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let n = 6 + rng.below(5) as usize;
        let inst = random_knapsack(&mut rng, n);
        let serial = solve_with_jobs(&inst, 1);
        let expected = brute_force_instance(&inst).expect("knapsacks are feasible");
        assert!(
            (serial.objective - expected).abs() < 1e-6,
            "seed {seed}: serial {} vs brute force {expected}",
            serial.objective
        );
        assert_eq!(serial.status, Status::Optimal);
        for jobs in [2usize, 4] {
            let par = solve_with_jobs(&inst, jobs);
            assert_identical(&serial, &par, &format!("knapsack seed {seed} jobs {jobs}"));
        }
    }
}

#[test]
fn parallel_equals_serial_on_equality_instances() {
    for seed in 100..115u64 {
        let mut rng = Rng::new(seed);
        let n = 5 + rng.below(4) as usize;
        let inst = random_equality(&mut rng, n);
        let serial = solve_with_jobs(&inst, 1);
        let expected = brute_force_instance(&inst).expect("cardinality rows are satisfiable");
        assert!(
            (serial.objective - expected).abs() < 1e-6,
            "seed {seed}: serial {} vs brute force {expected}",
            serial.objective
        );
        for jobs in [2usize, 4] {
            let par = solve_with_jobs(&inst, jobs);
            assert_identical(&serial, &par, &format!("equality seed {seed} jobs {jobs}"));
        }
    }
}

#[test]
fn parallel_equals_serial_on_partitioning_instances() {
    for seed in 200..212u64 {
        let mut rng = Rng::new(seed);
        let items = 3 + rng.below(4) as usize; // 6..=12 binaries
        let inst = random_partitioning(&mut rng, items);
        let serial = solve_with_jobs(&inst, 1);
        let expected = brute_force_instance(&inst).expect("assignment instances are feasible");
        assert!(
            (serial.objective - expected).abs() < 1e-6,
            "seed {seed}: serial {} vs brute force {expected}",
            serial.objective
        );
        for jobs in [2usize, 4] {
            let par = solve_with_jobs(&inst, jobs);
            assert_identical(
                &serial,
                &par,
                &format!("partitioning seed {seed} jobs {jobs}"),
            );
        }
    }
}

#[test]
fn node_limit_under_parallelism_is_sane() {
    // A 16-item knapsack the limit truncates. Under any job count the
    // solver must respect the limit path: either an incumbent with
    // LimitReached (feasible for the constraint), Optimal if it finished
    // within the budget, or NoIncumbent — never a crash or an infeasible
    // "solution".
    let mut rng = Rng::new(7);
    let inst = random_knapsack(&mut rng, 16);
    for jobs in [1usize, 2, 4] {
        let (p, _) = inst.build();
        let sol = p.solve(&SolveOptions {
            max_nodes: 12,
            jobs,
            ..SolveOptions::default()
        });
        match sol {
            Ok(s) => {
                assert!(s.nodes_explored <= 12, "jobs={jobs}");
                let (terms, _, rhs) = &inst.constraints[0];
                let lhs: f64 = terms.iter().map(|&(v, a)| a * s.values[v]).sum();
                assert!(
                    lhs <= rhs + 1e-6,
                    "jobs={jobs}: incumbent violates knapsack"
                );
                for v in &s.values {
                    assert!(
                        (v - v.round()).abs() < 1e-6,
                        "jobs={jobs}: incumbent not integral"
                    );
                }
            }
            Err(IlpError::NoIncumbent) => {}
            Err(e) => panic!("jobs={jobs}: unexpected error {e}"),
        }
    }
    // Sanity: without the limit the instance solves to optimality at
    // every job count, identically.
    let serial = solve_with_jobs(&inst, 1);
    assert_eq!(serial.status, Status::Optimal);
    for jobs in [2usize, 4] {
        assert_identical(&serial, &solve_with_jobs(&inst, jobs), "unlimited 16-item");
    }
}
