//! Memory-cell allocation for inter-unit data transfers.
//!
//! "After the number of states of the STG has been minimized, memory cells
//! are allocated (starting from a base address) for each edge representing
//! a data transfer between different processing units." (paper, Section 2;
//! the result is Figure 3's memory map.)
//!
//! Two allocators are provided:
//!
//! * [`allocate_memory`] — the paper's scheme: sequential cells from the
//!   base address, one per cut edge, aligned to bus words;
//! * [`allocate_memory_packed`] — an ablation that reuses cells whose
//!   transfer lifetimes (from the static schedule) do not overlap,
//!   left-edge packed.

use std::fmt;

use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{EdgeId, Mapping, Memory, PartitioningGraph};
use cool_schedule::StaticSchedule;

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// The transfers do not fit the memory's capacity.
    OutOfMemory {
        /// Bytes required.
        required: u32,
        /// Bytes available from the base address.
        available: u32,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                required,
                available,
            } => write!(
                f,
                "memory allocation needs {required} bytes but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for MemoryError {}

/// One allocated communication cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryCell {
    /// The cut edge this cell carries.
    pub edge: EdgeId,
    /// Byte address of the cell.
    pub address: u32,
    /// Cell size in bytes (bus-word aligned).
    pub bytes: u32,
}

/// The memory map produced by allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    cells: Vec<MemoryCell>,
    base: u32,
    bytes_used: u32,
}

impl MemoryMap {
    /// All cells, ordered by edge id.
    #[must_use]
    pub fn cells(&self) -> &[MemoryCell] {
        &self.cells
    }

    /// The cell of `edge`, if that edge was a cut edge.
    #[must_use]
    pub fn cell(&self, edge: EdgeId) -> Option<&MemoryCell> {
        self.cells.iter().find(|c| c.edge == edge)
    }

    /// Base address of the allocation region.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Total bytes of address space consumed above the base.
    #[must_use]
    pub fn bytes_used(&self) -> u32 {
        self.bytes_used
    }

    /// Number of allocated cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Figure-3-style rendering: `edge -> address (bytes)` rows.
    #[must_use]
    pub fn to_table(&self, g: &PartitioningGraph) -> String {
        let mut s = format!(
            "memory map: base 0x{:04x}, {} cells, {} bytes\n",
            self.base,
            self.cells.len(),
            self.bytes_used
        );
        for c in &self.cells {
            let desc = g
                .edge(c.edge)
                .ok()
                .and_then(|e| {
                    let src = g.node(e.src).ok()?.name().to_string();
                    let dst = g.node(e.dst).ok()?.name().to_string();
                    Some(format!("{src} -> {dst}"))
                })
                .unwrap_or_default();
            s.push_str(&format!(
                "  0x{:04x}  {:>2} B  {:<6} {desc}\n",
                c.address,
                c.bytes,
                c.edge.to_string()
            ));
        }
        s
    }
}

impl ContentHash for MemoryCell {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.edge.content_hash(h);
        h.write_u32(self.address);
        h.write_u32(self.bytes);
    }
}

impl ContentHash for MemoryMap {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.cells.content_hash(h);
        h.write_u32(self.base);
        h.write_u32(self.bytes_used);
    }
}

impl Codec for MemoryCell {
    fn encode(&self, e: &mut Encoder) {
        self.edge.encode(e);
        e.put_u32(self.address);
        e.put_u32(self.bytes);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MemoryCell {
            edge: d.take()?,
            address: d.take_u32()?,
            bytes: d.take_u32()?,
        })
    }
}

impl Codec for MemoryMap {
    fn encode(&self, e: &mut Encoder) {
        self.cells.encode(e);
        e.put_u32(self.base);
        e.put_u32(self.bytes_used);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MemoryMap {
            cells: d.take()?,
            base: d.take_u32()?,
            bytes_used: d.take_u32()?,
        })
    }
}

fn cell_bytes(bits: u16, bus_bits: u16) -> u32 {
    let word_bytes = u32::from(bus_bits.max(8)) / 8;
    let words = u32::from(bits.div_ceil(bus_bits.max(1)));
    words * word_bytes
}

/// Sequential allocation from the base address — the paper's scheme.
///
/// # Errors
///
/// [`MemoryError::OutOfMemory`] if the region overflows the memory size.
pub fn allocate_memory(
    g: &PartitioningGraph,
    mapping: &Mapping,
    memory: &Memory,
    bus_bits: u16,
) -> Result<MemoryMap, MemoryError> {
    let mut cells = Vec::new();
    let mut addr = memory.base_address;
    for (eid, e) in g.edges() {
        if mapping.resource(e.src) == mapping.resource(e.dst) {
            continue;
        }
        let bytes = cell_bytes(e.bits, bus_bits);
        cells.push(MemoryCell {
            edge: eid,
            address: addr,
            bytes,
        });
        addr += bytes;
    }
    let bytes_used = addr - memory.base_address;
    let available = memory.size_bytes.saturating_sub(memory.base_address);
    if bytes_used > available {
        return Err(MemoryError::OutOfMemory {
            required: bytes_used,
            available,
        });
    }
    Ok(MemoryMap {
        cells,
        base: memory.base_address,
        bytes_used,
    })
}

/// Lifetime-packed allocation: cells are reused across transfers whose
/// live ranges (producer finish → consumer finish, from the schedule) do
/// not overlap. Left-edge packing per cell size class.
///
/// # Errors
///
/// [`MemoryError::OutOfMemory`] if even the packed region overflows.
pub fn allocate_memory_packed(
    g: &PartitioningGraph,
    mapping: &Mapping,
    schedule: &StaticSchedule,
    memory: &Memory,
    bus_bits: u16,
) -> Result<MemoryMap, MemoryError> {
    // Gather (size, live-from, live-to, edge), group by size class so a
    // slot always has a uniform size.
    let mut by_size: std::collections::BTreeMap<u32, Vec<(u64, u64, EdgeId)>> =
        std::collections::BTreeMap::new();
    for (eid, e) in g.edges() {
        if mapping.resource(e.src) == mapping.resource(e.dst) {
            continue;
        }
        let bytes = cell_bytes(e.bits, bus_bits);
        let from = schedule.slot(e.src).finish;
        let to = schedule.slot(e.dst).finish.max(from + 1);
        by_size.entry(bytes).or_default().push((from, to, eid));
    }
    let mut cells = Vec::new();
    let mut addr = memory.base_address;
    for (bytes, mut intervals) in by_size {
        intervals.sort_unstable();
        // Left edge: slots store the time their occupant frees them.
        let mut slots: Vec<(u32, u64)> = Vec::new(); // (address, free_at)
        for (from, to, eid) in intervals {
            if let Some(slot) = slots.iter_mut().find(|(_, free)| *free <= from) {
                slot.1 = to;
                cells.push(MemoryCell {
                    edge: eid,
                    address: slot.0,
                    bytes,
                });
            } else {
                let a = addr;
                addr += bytes;
                slots.push((a, to));
                cells.push(MemoryCell {
                    edge: eid,
                    address: a,
                    bytes,
                });
            }
        }
    }
    cells.sort_by_key(|c| c.edge);
    let bytes_used = addr - memory.base_address;
    let available = memory.size_bytes.saturating_sub(memory.base_address);
    if bytes_used > available {
        return Err(MemoryError::OutOfMemory {
            required: bytes_used,
            available,
        });
    }
    Ok(MemoryMap {
        cells,
        base: memory.base_address,
        bytes_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_ir::{Resource, Target};
    use cool_spec::workloads;

    fn mixed_equalizer() -> (PartitioningGraph, Mapping, StaticSchedule, Target) {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, n) in g.function_nodes().into_iter().enumerate() {
            if i % 2 == 1 {
                mapping.assign(n, Resource::Hardware(0));
            }
        }
        let schedule =
            cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        (g, mapping, schedule, target)
    }

    #[test]
    fn one_cell_per_cut_edge() {
        let (g, mapping, _, target) = mixed_equalizer();
        let map = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        assert_eq!(map.cell_count(), mapping.cut_edges(&g).len());
        assert_eq!(map.base(), target.memory.base_address);
    }

    #[test]
    fn sequential_cells_do_not_overlap() {
        let (g, mapping, _, target) = mixed_equalizer();
        let map = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        let mut cells: Vec<&MemoryCell> = map.cells().iter().collect();
        cells.sort_by_key(|c| c.address);
        for pair in cells.windows(2) {
            assert!(pair[0].address + pair[0].bytes <= pair[1].address);
        }
    }

    #[test]
    fn packed_never_uses_more_than_sequential() {
        let (g, mapping, schedule, target) = mixed_equalizer();
        let seq = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        let packed = allocate_memory_packed(
            &g,
            &mapping,
            &schedule,
            &target.memory,
            target.bus.width_bits,
        )
        .unwrap();
        assert!(packed.bytes_used() <= seq.bytes_used());
        assert_eq!(packed.cell_count(), seq.cell_count());
    }

    #[test]
    fn packed_cells_never_alias_while_live() {
        let (g, mapping, schedule, target) = mixed_equalizer();
        let packed = allocate_memory_packed(
            &g,
            &mapping,
            &schedule,
            &target.memory,
            target.bus.width_bits,
        )
        .unwrap();
        let live = |eid: EdgeId| -> (u64, u64) {
            let e = g.edge(eid).unwrap();
            let from = schedule.slot(e.src).finish;
            (from, schedule.slot(e.dst).finish.max(from + 1))
        };
        for (i, a) in packed.cells().iter().enumerate() {
            for b in &packed.cells()[i + 1..] {
                if a.address == b.address {
                    let (af, at) = live(a.edge);
                    let (bf, bt) = live(b.edge);
                    assert!(at <= bf || bt <= af, "aliased cells live simultaneously");
                }
            }
        }
    }

    #[test]
    fn out_of_memory_detected() {
        let (g, mapping, _, mut target) = mixed_equalizer();
        target.memory.size_bytes = target.memory.base_address + 2; // 2 bytes only
        let err = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap_err();
        assert!(matches!(err, MemoryError::OutOfMemory { .. }));
    }

    #[test]
    fn uniform_mapping_allocates_nothing() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        let map = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        assert_eq!(map.cell_count(), 0);
        assert_eq!(map.bytes_used(), 0);
    }

    #[test]
    fn table_lists_cells() {
        let (g, mapping, _, target) = mixed_equalizer();
        let map = allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        let t = map.to_table(&g);
        assert!(t.contains("0x1000"), "table: {t}");
        assert!(t.contains("->"));
    }
}
