//! State/transition graph (STG) generation, minimization and memory
//! allocation — the co-synthesis core of the reproduced paper.
//!
//! After partitioning, COOL builds an STG as "the fundamental data
//! structure during co-synthesis":
//!
//! * for each node of the coloured partitioning graph, a **WAIT** (`w`),
//!   **EXECUTION** (`x`) and **DONE** (`d`) state;
//! * a **RESET** (`r`) state for each hardware resource and processor;
//! * **global system states** `X`, `R` and `D`;
//! * edges according to the computed schedule and the data dependencies.
//!
//! The state count is then **minimized**, and **memory cells are
//! allocated** (starting from a base address) for each edge representing a
//! data transfer between different processing units (paper Figure 3).
//!
//! This crate implements all three steps: [`generate`], [`minimize()`](minimize()) and
//! [`allocate_memory`] / [`allocate_memory_packed`] (the packed variant is
//! the lifetime-reuse ablation).

pub mod memory;
pub mod minimize;

use std::fmt;

use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{EdgeId, Mapping, NodeId, NodeKind, PartitioningGraph, Resource};
use cool_schedule::StaticSchedule;

pub use cool_ir::par::effective_jobs;
pub use memory::{allocate_memory, allocate_memory_packed, MemoryCell, MemoryError, MemoryMap};
pub use minimize::{minimize, minimize_jobs, MinimizeStats};

/// Identifier of an STG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Dense index of the state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a `StateId` from a dense index obtained via [`StateId::index`]
    /// on the same STG.
    #[must_use]
    pub fn from_index(index: usize) -> StateId {
        StateId(index as u32)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The role of an STG state, exactly following the paper's construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// Global reset state `R`.
    GlobalReset,
    /// Global execution state `X` (the system invocation runs).
    GlobalExecute,
    /// Global done state `D`.
    GlobalDone,
    /// Per-resource reset state `r`.
    ResourceReset(Resource),
    /// WAIT state `w` of a node: dependencies not yet satisfied.
    Wait(NodeId),
    /// EXECUTION state `x` of a node: the function is running.
    Exec(NodeId),
    /// DONE state `d` of a node: result available.
    Done(NodeId),
}

impl StateKind {
    /// The control action the system controller asserts in this state:
    /// `Some(node)` means "start signal for `node` is high".
    #[must_use]
    pub fn started_node(self) -> Option<NodeId> {
        match self {
            StateKind::Exec(n) => Some(n),
            _ => None,
        }
    }

    /// Short label in the paper's notation (`w3`, `x3`, `d3`, `r`, `X`…).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            StateKind::GlobalReset => "R".to_string(),
            StateKind::GlobalExecute => "X".to_string(),
            StateKind::GlobalDone => "D".to_string(),
            StateKind::ResourceReset(r) => format!("r[{r}]"),
            StateKind::Wait(n) => format!("w{}", n.index()),
            StateKind::Exec(n) => format!("x{}", n.index()),
            StateKind::Done(n) => format!("d{}", n.index()),
        }
    }
}

/// Condition guarding a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Condition {
    /// Taken unconditionally on the next controller cycle.
    Always,
    /// The environment asserted the system start signal.
    SystemStart,
    /// All data dependencies of the node are satisfied (predecessor done
    /// flags set and inbound transfers complete).
    DepsReady(NodeId),
    /// The processing unit executing the node raised its done signal.
    UnitDone(NodeId),
    /// All sink nodes of the design are done.
    AllDone,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => f.write_str("1"),
            Condition::SystemStart => f.write_str("start"),
            Condition::DepsReady(n) => write!(f, "ready({})", n.index()),
            Condition::UnitDone(n) => write!(f, "done({})", n.index()),
            Condition::AllDone => f.write_str("all_done"),
        }
    }
}

/// A guarded transition between STG states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Guard condition.
    pub condition: Condition,
}

/// One state with its role and owning resource (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct State {
    /// The state's role.
    pub kind: StateKind,
    /// The resource whose communicating controller hosts this state
    /// (`None` for the three global states).
    pub resource: Option<Resource>,
}

/// The state/transition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    states: Vec<State>,
    transitions: Vec<Transition>,
}

impl Stg {
    /// All states, indexed by [`StateId::index`].
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All transitions.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Outgoing transitions of `s`.
    #[must_use]
    pub fn outgoing(&self, s: StateId) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.from == s).collect()
    }

    /// The unique state with the given kind, if present.
    #[must_use]
    pub fn state_by_kind(&self, kind: StateKind) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.kind == kind)
            .map(|i| StateId(i as u32))
    }

    /// States hosted by `resource`'s communicating controller, in id order.
    #[must_use]
    pub fn states_of(&self, resource: Resource) -> Vec<StateId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.resource == Some(resource))
            .map(|(i, _)| StateId(i as u32))
            .collect()
    }

    /// Structural sanity: every transition endpoint exists, the three
    /// global states are present exactly once, and every non-global state
    /// is reachable from `R`.
    ///
    /// # Errors
    ///
    /// `Err(description)` naming the first violation.
    pub fn verify(&self) -> Result<(), String> {
        for t in &self.transitions {
            if t.from.index() >= self.states.len() || t.to.index() >= self.states.len() {
                return Err(format!("dangling transition {} -> {}", t.from, t.to));
            }
        }
        for kind in [
            StateKind::GlobalReset,
            StateKind::GlobalExecute,
            StateKind::GlobalDone,
        ] {
            let count = self.states.iter().filter(|s| s.kind == kind).count();
            if count != 1 {
                return Err(format!("expected exactly one {kind:?}, found {count}"));
            }
        }
        // Reachability from R.
        let start = self
            .state_by_kind(StateKind::GlobalReset)
            .expect("checked above");
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut seen[s.index()], true) {
                continue;
            }
            for t in self.outgoing(s) {
                stack.push(t.to);
            }
        }
        if let Some(unreached) = seen.iter().position(|&v| !v) {
            return Err(format!(
                "state {} ({}) unreachable from R",
                unreached,
                self.states[unreached].kind.label()
            ));
        }
        Ok(())
    }

    /// Render the STG in Graphviz DOT format (states labelled in the
    /// paper's w/x/d notation, transitions labelled by guard).
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{name}_stg\" {{");
        for (i, st) in self.states.iter().enumerate() {
            let shape = match st.kind {
                StateKind::Exec(_) => "box",
                StateKind::GlobalReset | StateKind::GlobalExecute | StateKind::GlobalDone => {
                    "doublecircle"
                }
                _ => "circle",
            };
            let _ = writeln!(s, "  s{i} [shape={shape}, label=\"{}\"];", st.kind.label());
        }
        for t in &self.transitions {
            let _ = writeln!(
                s,
                "  s{} -> s{} [label=\"{}\"];",
                t.from.index(),
                t.to.index(),
                t.condition
            );
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Render the STG as a table, resource by resource (Figure 3 style).
    #[must_use]
    pub fn to_table(&self, target: &cool_ir::Target) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "STG: {} states, {} transitions\n",
            self.state_count(),
            self.transition_count()
        ));
        s.push_str("global: R X D\n");
        for r in target.resources() {
            let states = self.states_of(r);
            let labels: Vec<String> = states
                .iter()
                .map(|&id| self.states[id.index()].kind.label())
                .collect();
            s.push_str(&format!(
                "{:<6} {}\n",
                target.resource_name(r),
                labels.join(" ")
            ));
        }
        s
    }
}

impl ContentHash for StateId {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u32(self.0);
    }
}

impl ContentHash for StateKind {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            StateKind::GlobalReset => h.write_u8(0),
            StateKind::GlobalExecute => h.write_u8(1),
            StateKind::GlobalDone => h.write_u8(2),
            StateKind::ResourceReset(r) => {
                h.write_u8(3);
                r.content_hash(h);
            }
            StateKind::Wait(n) => {
                h.write_u8(4);
                n.content_hash(h);
            }
            StateKind::Exec(n) => {
                h.write_u8(5);
                n.content_hash(h);
            }
            StateKind::Done(n) => {
                h.write_u8(6);
                n.content_hash(h);
            }
        }
    }
}

impl ContentHash for Condition {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            Condition::Always => h.write_u8(0),
            Condition::SystemStart => h.write_u8(1),
            Condition::DepsReady(n) => {
                h.write_u8(2);
                n.content_hash(h);
            }
            Condition::UnitDone(n) => {
                h.write_u8(3);
                n.content_hash(h);
            }
            Condition::AllDone => h.write_u8(4),
        }
    }
}

impl ContentHash for Transition {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.from.content_hash(h);
        self.to.content_hash(h);
        self.condition.content_hash(h);
    }
}

impl ContentHash for State {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.kind.content_hash(h);
        self.resource.content_hash(h);
    }
}

impl ContentHash for Stg {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.states.content_hash(h);
        self.transitions.content_hash(h);
    }
}

impl ContentHash for MinimizeStats {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.states_before);
        h.write_usize(self.states_after);
        h.write_usize(self.transitions_before);
        h.write_usize(self.transitions_after);
    }
}

impl Codec for StateId {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.0);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StateId(d.take_u32()?))
    }
}

impl Codec for StateKind {
    fn encode(&self, e: &mut Encoder) {
        match self {
            StateKind::GlobalReset => e.put_u8(0),
            StateKind::GlobalExecute => e.put_u8(1),
            StateKind::GlobalDone => e.put_u8(2),
            StateKind::ResourceReset(r) => {
                e.put_u8(3);
                r.encode(e);
            }
            StateKind::Wait(n) => {
                e.put_u8(4);
                n.encode(e);
            }
            StateKind::Exec(n) => {
                e.put_u8(5);
                n.encode(e);
            }
            StateKind::Done(n) => {
                e.put_u8(6);
                n.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(StateKind::GlobalReset),
            1 => Ok(StateKind::GlobalExecute),
            2 => Ok(StateKind::GlobalDone),
            3 => Ok(StateKind::ResourceReset(Resource::decode(d)?)),
            4 => Ok(StateKind::Wait(NodeId::decode(d)?)),
            5 => Ok(StateKind::Exec(NodeId::decode(d)?)),
            6 => Ok(StateKind::Done(NodeId::decode(d)?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "StateKind",
                tag,
            }),
        }
    }
}

impl Codec for Condition {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Condition::Always => e.put_u8(0),
            Condition::SystemStart => e.put_u8(1),
            Condition::DepsReady(n) => {
                e.put_u8(2);
                n.encode(e);
            }
            Condition::UnitDone(n) => {
                e.put_u8(3);
                n.encode(e);
            }
            Condition::AllDone => e.put_u8(4),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(Condition::Always),
            1 => Ok(Condition::SystemStart),
            2 => Ok(Condition::DepsReady(NodeId::decode(d)?)),
            3 => Ok(Condition::UnitDone(NodeId::decode(d)?)),
            4 => Ok(Condition::AllDone),
            tag => Err(CodecError::InvalidTag {
                type_name: "Condition",
                tag,
            }),
        }
    }
}

impl Codec for Transition {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        self.condition.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Transition {
            from: StateId::decode(d)?,
            to: StateId::decode(d)?,
            condition: Condition::decode(d)?,
        })
    }
}

impl Codec for State {
    fn encode(&self, e: &mut Encoder) {
        self.kind.encode(e);
        self.resource.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(State {
            kind: StateKind::decode(d)?,
            resource: Option::decode(d)?,
        })
    }
}

impl Codec for Stg {
    fn encode(&self, e: &mut Encoder) {
        self.states.encode(e);
        self.transitions.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Stg {
            states: Vec::decode(d)?,
            transitions: Vec::decode(d)?,
        })
    }
}

impl Codec for MinimizeStats {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.states_before);
        e.put_usize(self.states_after);
        e.put_usize(self.transitions_before);
        e.put_usize(self.transitions_after);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MinimizeStats {
            states_before: d.take_usize()?,
            states_after: d.take_usize()?,
            transitions_before: d.take_usize()?,
            transitions_after: d.take_usize()?,
        })
    }
}

/// The reusable per-node slice of an STG: the node's `w`/`x`/`d` states
/// plus the two transitions internal to them, with state endpoints stored
/// as *local* indices so the fragment is position-independent.
///
/// A fragment is a pure function of `(node, resource)` — it does not
/// depend on the schedule, the rest of the graph, or where in the STG the
/// states end up — which is what makes it safe to cache across runs and
/// splice into any STG via [`generate_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFragment {
    /// The function node this fragment animates.
    pub node: NodeId,
    /// The resource whose communicating controller hosts the states.
    pub resource: Resource,
    /// State roles in push order: `w`, `x`, `d`.
    pub kinds: Vec<StateKind>,
    /// Internal transitions as `(from, to)` local state indices + guard.
    pub transitions: Vec<(u8, u8, Condition)>,
}

impl NodeFragment {
    /// Local index of the `w` state inside a fragment.
    pub const WAIT: u32 = 0;
    /// Local index of the `x` state inside a fragment.
    pub const EXEC: u32 = 1;
    /// Local index of the `d` state inside a fragment.
    pub const DONE: u32 = 2;

    /// `true` if the fragment is exactly what [`node_fragment`] builds for
    /// `(node, resource)` — the validity gate applied to fragments coming
    /// back from a cache before they are spliced into an STG.
    #[must_use]
    pub fn is_canonical_for(&self, node: NodeId, resource: Resource) -> bool {
        *self == node_fragment(node, resource)
    }
}

impl ContentHash for NodeFragment {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.node.content_hash(h);
        self.resource.content_hash(h);
        self.kinds.content_hash(h);
        h.write_usize(self.transitions.len());
        for (from, to, condition) in &self.transitions {
            h.write_u8(*from);
            h.write_u8(*to);
            condition.content_hash(h);
        }
    }
}

impl Codec for NodeFragment {
    fn encode(&self, e: &mut Encoder) {
        self.node.encode(e);
        self.resource.encode(e);
        self.kinds.encode(e);
        e.put_usize(self.transitions.len());
        for (from, to, condition) in &self.transitions {
            e.put_u8(*from);
            e.put_u8(*to);
            condition.encode(e);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let node = NodeId::decode(d)?;
        let resource = Resource::decode(d)?;
        let kinds = Vec::decode(d)?;
        let len = d.take_usize()?;
        let mut transitions = Vec::with_capacity(len.min(16));
        for _ in 0..len {
            let from = d.take_u8()?;
            let to = d.take_u8()?;
            transitions.push((from, to, Condition::decode(d)?));
        }
        Ok(NodeFragment {
            node,
            resource,
            kinds,
            transitions,
        })
    }
}

/// Build the canonical [`NodeFragment`] for one function node: states
/// `w → x` on [`Condition::DepsReady`] and `x → d` on
/// [`Condition::UnitDone`], exactly as the paper's construction demands.
#[must_use]
pub fn node_fragment(node: NodeId, resource: Resource) -> NodeFragment {
    NodeFragment {
        node,
        resource,
        kinds: vec![
            StateKind::Wait(node),
            StateKind::Exec(node),
            StateKind::Done(node),
        ],
        transitions: vec![
            (0, 1, Condition::DepsReady(node)),
            (1, 2, Condition::UnitDone(node)),
        ],
    }
}

/// Generate the STG of a scheduled, coloured partitioning graph.
///
/// Construction follows the paper exactly:
/// * `R → r[res]` for every resource (reset fan-out), `r[res]` chains into
///   the first scheduled node's `w` state, gated on the global `X` state;
/// * per node: `w → x` on [`Condition::DepsReady`], `x → d` on
///   [`Condition::UnitDone`];
/// * on processors, `d(prev) → w(next)` follows the static schedule order
///   (software is sequential);
/// * on hardware resources every node's `w` is entered from the resource
///   reset (hardware nodes run concurrently);
/// * sink completion leads to the global `D`, and `D → R` closes the loop
///   for the next system invocation.
#[must_use]
pub fn generate(g: &PartitioningGraph, mapping: &Mapping, schedule: &StaticSchedule) -> Stg {
    generate_with(g, mapping, schedule, &mut node_fragment)
}

/// [`generate`], with the per-node `w`/`x`/`d` slices supplied by a
/// `provider` — the hook the incremental flow uses to splice cached
/// [`NodeFragment`]s for clean nodes instead of rebuilding them.
///
/// The provider must return the canonical fragment for `(node, resource)`
/// (checked in debug builds); callers serving fragments from a cache gate
/// them through [`NodeFragment::is_canonical_for`] first. The resulting
/// STG is byte-identical to [`generate`] regardless of where each
/// fragment came from.
#[must_use]
pub fn generate_with(
    g: &PartitioningGraph,
    mapping: &Mapping,
    schedule: &StaticSchedule,
    provider: &mut dyn FnMut(NodeId, Resource) -> NodeFragment,
) -> Stg {
    let mut states = Vec::new();
    let mut transitions = Vec::new();
    let push = |kind: StateKind, resource: Option<Resource>, states: &mut Vec<State>| {
        states.push(State { kind, resource });
        StateId(states.len() as u32 - 1)
    };

    let r = push(StateKind::GlobalReset, None, &mut states);
    let x = push(StateKind::GlobalExecute, None, &mut states);
    let d = push(StateKind::GlobalDone, None, &mut states);
    transitions.push(Transition {
        from: r,
        to: x,
        condition: Condition::SystemStart,
    });

    // Resources that actually host function nodes.
    let target_resources: Vec<Resource> = {
        let mut v: Vec<Resource> = g
            .function_nodes()
            .iter()
            .map(|&n| mapping.resource(n))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    for &res in &target_resources {
        let reset = push(StateKind::ResourceReset(res), Some(res), &mut states);
        transitions.push(Transition {
            from: x,
            to: reset,
            condition: Condition::Always,
        });

        // Function nodes on this resource in schedule order.
        let order: Vec<NodeId> = schedule
            .order_on(res)
            .into_iter()
            .filter(|&n| {
                g.node(n)
                    .map(|x| x.kind() == NodeKind::Function)
                    .unwrap_or(false)
            })
            .collect();

        let sequential = res.is_software();
        let mut prev_done: Option<StateId> = None;
        for &n in &order {
            let frag = provider(n, res);
            debug_assert!(
                frag.is_canonical_for(n, res),
                "node-fragment provider must return the canonical fragment for {n}"
            );
            let base = states.len() as u32;
            for &kind in &frag.kinds {
                states.push(State {
                    kind,
                    resource: Some(frag.resource),
                });
            }
            for &(from, to, condition) in &frag.transitions {
                transitions.push(Transition {
                    from: StateId(base + u32::from(from)),
                    to: StateId(base + u32::from(to)),
                    condition,
                });
            }
            let w = StateId(base + NodeFragment::WAIT);
            let dn = StateId(base + NodeFragment::DONE);
            if sequential {
                let entry = prev_done.unwrap_or(reset);
                transitions.push(Transition {
                    from: entry,
                    to: w,
                    condition: Condition::Always,
                });
                prev_done = Some(dn);
            } else {
                transitions.push(Transition {
                    from: reset,
                    to: w,
                    condition: Condition::Always,
                });
            }
        }
        // Last done (software) or every done (hardware) can reach D.
        if sequential {
            if let Some(last) = prev_done {
                transitions.push(Transition {
                    from: last,
                    to: d,
                    condition: Condition::AllDone,
                });
            } else {
                transitions.push(Transition {
                    from: reset,
                    to: d,
                    condition: Condition::AllDone,
                });
            }
        } else {
            for &n in &order {
                let dn = StateId(
                    states
                        .iter()
                        .position(|s| s.kind == StateKind::Done(n))
                        .expect("just pushed") as u32,
                );
                transitions.push(Transition {
                    from: dn,
                    to: d,
                    condition: Condition::AllDone,
                });
            }
            if order.is_empty() {
                transitions.push(Transition {
                    from: reset,
                    to: d,
                    condition: Condition::AllDone,
                });
            }
        }
    }
    if target_resources.is_empty() {
        // Pure wiring design: X completes immediately.
        transitions.push(Transition {
            from: x,
            to: d,
            condition: Condition::AllDone,
        });
    }
    transitions.push(Transition {
        from: d,
        to: r,
        condition: Condition::Always,
    });

    Stg {
        states,
        transitions,
    }
}

/// Count of cut edges — the transfers that receive memory cells.
#[must_use]
pub fn transfer_edges(g: &PartitioningGraph, mapping: &Mapping) -> Vec<EdgeId> {
    mapping.cut_edges(g).into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_ir::Target;
    use cool_spec::workloads;

    fn scheduled_fuzzy() -> (PartitioningGraph, Mapping, StaticSchedule, Target) {
        let g = workloads::fuzzy_controller();
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mut mapping = cool_ir::Mapping::uniform(g.node_count(), Resource::Software(0));
        // Mixed partition: defuzz + clip in hardware.
        mapping.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
        mapping.assign(g.node_by_name("clip").unwrap(), Resource::Hardware(0));
        let schedule =
            cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        (g, mapping, schedule, target)
    }

    #[test]
    fn stg_has_paper_state_inventory() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        stg.verify().unwrap();
        // 3 global + per-resource reset + 3 per function node.
        let functions = g.function_nodes().len();
        let resources_used = 2; // dsp0 and fpga0
        assert_eq!(stg.state_count(), 3 + resources_used + 3 * functions);
    }

    #[test]
    fn every_function_node_has_wxd() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        for n in g.function_nodes() {
            assert!(
                stg.state_by_kind(StateKind::Wait(n)).is_some(),
                "missing w for {n}"
            );
            assert!(
                stg.state_by_kind(StateKind::Exec(n)).is_some(),
                "missing x for {n}"
            );
            assert!(
                stg.state_by_kind(StateKind::Done(n)).is_some(),
                "missing d for {n}"
            );
        }
    }

    #[test]
    fn software_chain_follows_schedule() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        let sw_order: Vec<NodeId> = schedule
            .order_on(Resource::Software(0))
            .into_iter()
            .filter(|&n| g.node(n).unwrap().kind() == NodeKind::Function)
            .collect();
        // d(prev) -> w(next) transition must exist for each consecutive pair.
        for pair in sw_order.windows(2) {
            let dprev = stg.state_by_kind(StateKind::Done(pair[0])).unwrap();
            let wnext = stg.state_by_kind(StateKind::Wait(pair[1])).unwrap();
            assert!(
                stg.outgoing(dprev).iter().any(|t| t.to == wnext),
                "missing chain {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn global_cycle_exists() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        let r = stg.state_by_kind(StateKind::GlobalReset).unwrap();
        let d = stg.state_by_kind(StateKind::GlobalDone).unwrap();
        assert!(
            stg.outgoing(d).iter().any(|t| t.to == r),
            "D must loop back to R"
        );
        let x = stg.state_by_kind(StateKind::GlobalExecute).unwrap();
        assert!(stg
            .outgoing(r)
            .iter()
            .any(|t| t.to == x && t.condition == Condition::SystemStart));
    }

    #[test]
    fn table_renders_resources() {
        let (g, mapping, schedule, target) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        let table = stg.to_table(&target);
        assert!(table.contains("dsp0"));
        assert!(table.contains("fpga0"));
        assert!(table.contains("states"));
    }

    #[test]
    fn dot_export_has_all_states_and_transitions() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let stg = generate(&g, &mapping, &schedule);
        let dot = stg.to_dot(g.name());
        assert_eq!(dot.matches("shape=").count(), stg.state_count());
        assert_eq!(dot.matches(" -> ").count(), stg.transition_count());
        assert!(dot.contains("doublecircle"), "global states must stand out");
    }

    #[test]
    fn generate_with_provider_matches_generate() {
        let (g, mapping, schedule, _) = scheduled_fuzzy();
        let reference = generate(&g, &mapping, &schedule);
        // A provider serving fragments out of a prepopulated map (the shape
        // the incremental flow uses) must produce a byte-identical STG.
        let mut served = 0usize;
        let mut cache: std::collections::HashMap<(NodeId, Resource), NodeFragment> =
            std::collections::HashMap::new();
        for &n in &g.function_nodes() {
            let res = mapping.resource(n);
            cache.insert((n, res), node_fragment(n, res));
        }
        let spliced = generate_with(&g, &mapping, &schedule, &mut |n, res| {
            served += 1;
            cache[&(n, res)].clone()
        });
        assert_eq!(spliced, reference);
        assert_eq!(served, g.function_nodes().len());
    }

    #[test]
    fn node_fragment_is_position_independent_and_canonical() {
        let n = NodeId::from_index(7);
        let frag = node_fragment(n, Resource::Hardware(1));
        assert_eq!(frag.kinds.len(), 3);
        assert_eq!(frag.transitions.len(), 2);
        assert!(frag.is_canonical_for(n, Resource::Hardware(1)));
        assert!(!frag.is_canonical_for(n, Resource::Software(0)));
        assert!(!frag.is_canonical_for(NodeId::from_index(8), Resource::Hardware(1)));
    }

    #[test]
    fn node_fragment_codec_roundtrip() {
        let frag = node_fragment(NodeId::from_index(3), Resource::Software(0));
        let bytes = cool_ir::codec::to_bytes(&frag);
        let back: NodeFragment = cool_ir::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, frag);
    }

    #[test]
    fn transfer_edges_match_cut_edges() {
        let (g, mapping, _, _) = scheduled_fuzzy();
        assert_eq!(
            transfer_edges(&g, &mapping).len(),
            mapping.cut_edges(&g).len()
        );
        assert!(!transfer_edges(&g, &mapping).is_empty());
    }
}
