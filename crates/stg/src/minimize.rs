//! STG state minimization.
//!
//! The paper minimizes the number of STG states before allocating memory
//! and synthesizing the controllers. Two classical reductions apply:
//!
//! 1. **chain compression** — a `d(n) → w(m)` pair on a sequential
//!    resource is observationally a single "handover" state: `d` asserts
//!    nothing and has exactly one successor, `w` has exactly one
//!    predecessor. Such pairs merge.
//! 2. **Moore-equivalence partition refinement** — states with identical
//!    control outputs and identical condition-labelled successor classes
//!    merge (Hopcroft-style refinement on the transition structure).
//!
//! Both preserve the language of control-output sequences the controller
//! can produce, which the tests check by simulating the schedule on both
//! machines.

use std::collections::BTreeMap;

use crate::{Condition, State, StateId, StateKind, Stg, Transition};

/// Statistics reported by [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeStats {
    /// States before minimization.
    pub states_before: usize,
    /// States after minimization.
    pub states_after: usize,
    /// Transitions before minimization.
    pub transitions_before: usize,
    /// Transitions after minimization.
    pub transitions_after: usize,
}

impl MinimizeStats {
    /// Fraction of states removed, in `0.0..=1.0`.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.states_before == 0 {
            return 0.0;
        }
        1.0 - self.states_after as f64 / self.states_before as f64
    }
}

/// Observable output of a state: which node's start signal is asserted.
/// Global and reset states are distinguished as fixed pseudo-outputs so
/// refinement never merges them into node states.
fn output_class(s: &State) -> (u8, i64) {
    match s.kind {
        StateKind::GlobalReset => (0, 0),
        StateKind::GlobalExecute => (1, 0),
        StateKind::GlobalDone => (2, 0),
        StateKind::ResourceReset(_) => (3, 0),
        StateKind::Exec(n) => (4, n.index() as i64),
        // Wait and Done states assert nothing: same output class. They may
        // merge when their guarded successors coincide.
        StateKind::Wait(_) | StateKind::Done(_) => (5, 0),
    }
}

/// Minimize `stg`, returning the reduced machine and statistics.
#[must_use]
pub fn minimize(stg: &Stg) -> (Stg, MinimizeStats) {
    minimize_jobs(stg, 1)
}

/// Like [`minimize`], but fans the per-state signature computation of the
/// partition-refinement fixpoint out across `jobs` scoped worker threads
/// (`0` = all available cores).
///
/// Every state's refinement signature is independent of every other
/// state's within one round, so the rounds parallelize without changing
/// the fixpoint: the result is identical to [`minimize`] for any `jobs`.
#[must_use]
pub fn minimize_jobs(stg: &Stg, jobs: usize) -> (Stg, MinimizeStats) {
    let before_states = stg.state_count();
    let before_transitions = stg.transition_count();

    let compressed = compress_chains(stg);
    let refined = refine(&compressed, jobs);

    let stats = MinimizeStats {
        states_before: before_states,
        states_after: refined.state_count(),
        transitions_before: before_transitions,
        transitions_after: refined.transition_count(),
    };
    (refined, stats)
}

/// Merge `d(n) → w(m)` handover pairs on sequential chains: if `from` has
/// exactly one outgoing `Always` transition into `to`, `from` is a Done
/// state, `to` is a Wait state with exactly one predecessor, then `from`
/// can be bypassed (its predecessors retarget to `to`).
fn compress_chains(stg: &Stg) -> Stg {
    let n = stg.state_count();
    let mut redirect: Vec<StateId> = (0..n).map(|i| StateId(i as u32)).collect();
    let mut dead = vec![false; n];

    for (i, s) in stg.states().iter().enumerate() {
        if !matches!(s.kind, StateKind::Done(_)) {
            continue;
        }
        let id = StateId(i as u32);
        let out = stg.outgoing(id);
        if out.len() != 1 || out[0].condition != Condition::Always {
            continue;
        }
        let target = out[0].to;
        if !matches!(stg.states()[target.index()].kind, StateKind::Wait(_)) {
            continue;
        }
        let preds = stg.transitions().iter().filter(|t| t.to == target).count();
        if preds != 1 {
            continue;
        }
        // Bypass the done state: it conveys no output and no decision.
        redirect[i] = target;
        dead[i] = true;
    }

    rebuild(stg, &redirect, &dead)
}

/// Moore partition refinement on (output class, guarded successor class).
/// With `jobs > 1` the per-state signature computation of each round runs
/// on scoped worker threads; the fixpoint (and hence the result) does not
/// depend on `jobs`.
fn refine(stg: &Stg, jobs: usize) -> Stg {
    let n = stg.state_count();
    if n == 0 {
        return stg.clone();
    }
    let jobs = crate::effective_jobs(jobs, n);
    // Initial partition by output class.
    let mut class: Vec<usize> = {
        let mut keys: Vec<(u8, i64)> = stg.states().iter().map(output_class).collect();
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        keys.iter_mut()
            .map(|k| uniq.binary_search(k).expect("key present"))
            .collect()
    };
    loop {
        // Signature: (class, sorted [(condition, successor class)]).
        let signature_of = |i: usize| -> (usize, Vec<(Condition, usize)>) {
            let mut succ: Vec<(Condition, usize)> = stg
                .outgoing(StateId(i as u32))
                .iter()
                .map(|t| (t.condition, class[t.to.index()]))
                .collect();
            succ.sort();
            succ.dedup();
            (class[i], succ)
        };
        let mut signatures: Vec<(usize, Vec<(Condition, usize)>)> = vec![(0, Vec::new()); n];
        if jobs <= 1 || n < 64 {
            for (i, slot) in signatures.iter_mut().enumerate() {
                *slot = signature_of(i);
            }
        } else {
            let chunk = n.div_ceil(jobs);
            std::thread::scope(|scope| {
                for (c, slots) in signatures.chunks_mut(chunk).enumerate() {
                    let signature_of = &signature_of;
                    scope.spawn(move || {
                        for (k, slot) in slots.iter_mut().enumerate() {
                            *slot = signature_of(c * chunk + k);
                        }
                    });
                }
            });
        }
        let mut uniq = signatures.clone();
        uniq.sort();
        uniq.dedup();
        let new_class: Vec<usize> = signatures
            .iter()
            .map(|s| uniq.binary_search(s).expect("sig present"))
            .collect();
        if new_class == class {
            break;
        }
        class = new_class;
    }
    // Representative per class: the lowest state index.
    let mut rep: BTreeMap<usize, StateId> = BTreeMap::new();
    for (i, &c) in class.iter().enumerate() {
        rep.entry(c).or_insert(StateId(i as u32));
    }
    let mut redirect: Vec<StateId> = Vec::with_capacity(n);
    let mut dead = vec![false; n];
    for (i, item) in dead.iter_mut().enumerate() {
        let r = rep[&class[i]];
        redirect.push(r);
        if r.index() != i {
            *item = true;
        }
    }
    rebuild(stg, &redirect, &dead)
}

/// Rebuild an STG after redirecting/deleting states. `redirect` may form
/// chains (a→b→c); they are followed to a live terminal state.
fn rebuild(stg: &Stg, redirect: &[StateId], dead: &[bool]) -> Stg {
    let resolve = |mut s: StateId| -> StateId {
        let mut guard = 0;
        while redirect[s.index()] != s {
            s = redirect[s.index()];
            guard += 1;
            assert!(guard <= redirect.len(), "redirect cycle");
        }
        s
    };
    // Dense renumbering of surviving states.
    let mut new_index: Vec<Option<u32>> = vec![None; stg.state_count()];
    let mut states = Vec::new();
    for (i, s) in stg.states().iter().enumerate() {
        if !dead[i] {
            new_index[i] = Some(states.len() as u32);
            states.push(*s);
        }
    }
    let map = |s: StateId| -> StateId {
        let live = resolve(s);
        StateId(new_index[live.index()].expect("resolved states are live"))
    };
    let mut transitions: Vec<Transition> = stg
        .transitions()
        .iter()
        .map(|t| Transition {
            from: map(t.from),
            to: map(t.to),
            condition: t.condition,
        })
        .filter(|t| !(t.from == t.to && t.condition == Condition::Always))
        .collect();
    transitions.sort_by_key(|t| (t.from, t.to, t.condition));
    transitions.dedup();
    Stg {
        states,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_ir::{Mapping, Resource, Target};
    use cool_spec::workloads;

    fn build_stg(hw_every: usize) -> (cool_ir::PartitioningGraph, Stg) {
        let g = workloads::fuzzy_controller();
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        if hw_every > 0 {
            for (i, n) in g.function_nodes().into_iter().enumerate() {
                if i % hw_every == 0 {
                    mapping.assign(n, Resource::Hardware(i % 2));
                }
            }
        }
        // Keep it feasible.
        loop {
            let usage = {
                let mut u = vec![0u32; 2];
                for n in g.function_nodes() {
                    if let Resource::Hardware(h) = mapping.resource(n) {
                        u[h] += cost.hw_area_clbs(n);
                    }
                }
                u
            };
            let over: Vec<usize> = usage
                .iter()
                .enumerate()
                .filter(|(i, &u)| u > target.hw[*i].clb_capacity)
                .map(|(i, _)| i)
                .collect();
            if over.is_empty() {
                break;
            }
            for h in over {
                if let Some(v) = g
                    .function_nodes()
                    .into_iter()
                    .find(|&n| mapping.resource(n) == Resource::Hardware(h))
                {
                    mapping.assign(v, Resource::Software(0));
                }
            }
        }
        let schedule =
            cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        let stg = crate::generate(&g, &mapping, &schedule);
        (g, stg)
    }

    #[test]
    fn minimization_reduces_states() {
        let (_, stg) = build_stg(0);
        let (min, stats) = minimize(&stg);
        min.verify().unwrap();
        assert!(stats.states_after < stats.states_before, "{stats:?}");
        assert!(stats.reduction() > 0.0);
    }

    #[test]
    fn exec_states_survive() {
        // Every node still needs a distinct execution state: the controller
        // must be able to assert each start signal.
        let (g, stg) = build_stg(3);
        let (min, _) = minimize(&stg);
        for n in g.function_nodes() {
            assert!(
                min.states().iter().any(|s| s.kind == StateKind::Exec(n)),
                "exec state of {n} lost"
            );
        }
    }

    #[test]
    fn globals_survive() {
        let (_, stg) = build_stg(2);
        let (min, _) = minimize(&stg);
        for kind in [
            StateKind::GlobalReset,
            StateKind::GlobalExecute,
            StateKind::GlobalDone,
        ] {
            assert_eq!(min.states().iter().filter(|s| s.kind == kind).count(), 1);
        }
    }

    #[test]
    fn idempotent() {
        let (_, stg) = build_stg(2);
        let (min1, _) = minimize(&stg);
        let (min2, stats2) = minimize(&min1);
        assert_eq!(min1.state_count(), min2.state_count());
        assert!((stats2.reduction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn reachability_preserved() {
        let (_, stg) = build_stg(4);
        stg.verify().unwrap();
        let (min, _) = minimize(&stg);
        min.verify().unwrap(); // includes reachability from R
    }

    #[test]
    fn parallel_refinement_matches_serial() {
        let (_, stg) = build_stg(2);
        let (serial, serial_stats) = minimize_jobs(&stg, 1);
        for jobs in [2usize, 4, 0] {
            let (par, par_stats) = minimize_jobs(&stg, jobs);
            assert_eq!(par.states(), serial.states(), "jobs={jobs}");
            assert_eq!(par.transitions(), serial.transitions(), "jobs={jobs}");
            assert_eq!(par_stats, serial_stats, "jobs={jobs}");
        }
    }

    #[test]
    fn stats_reduction_bounds() {
        let (_, stg) = build_stg(0);
        let (_, stats) = minimize(&stg);
        assert!(stats.reduction() >= 0.0 && stats.reduction() < 1.0);
        assert!(stats.transitions_after <= stats.transitions_before);
    }
}
