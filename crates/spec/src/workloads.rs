//! Workload generators for the designs evaluated in the paper.
//!
//! * [`equalizer`] — the 4-band audio equalizer whose partitioning graph is
//!   paper Figure 2 (parameterized over the band count);
//! * [`fuzzy_controller`] — the fuzzy controller of the results section:
//!   exactly **31 nodes**, matching the partitioning-graph size the paper
//!   reports for its ~900-line specification;
//! * [`fir`] — parameterized FIR filters for scaling studies;
//! * [`state_machine`] — control-dominated Moore-machine step logic
//!   (guards, thresholded events, mux cascades);
//! * [`multirate`] — multi-rate streaming DSP: decimate-by-2 FIR stages
//!   plus the matching interpolators;
//! * [`random_dag`] — seeded random data-flow graphs for partitioner
//!   sweeps (the ablation benches);
//! * [`zoo`] — one instance per family at 10–100× the paper-sized node
//!   counts, the design-space-exploration workload set.
//!
//! All generators return validated graphs.

use cool_ir::rng::StdRng;
use cool_ir::{Behavior, Expr, Op, PartitioningGraph};

/// Build an `n`-band equalizer (paper Figure 2 uses 4 bands).
///
/// The environment supplies the current sample and two delayed samples
/// (`x0`, `x1`, `x2`); each band applies a 3-tap band-pass filter and a
/// gain, and a balanced adder tree sums the bands into output `y`.
///
/// # Panics
///
/// Panics if `bands == 0`.
#[must_use]
pub fn equalizer(bands: usize) -> PartitioningGraph {
    assert!(bands > 0, "an equalizer needs at least one band");
    let mut g = PartitioningGraph::new(format!("equalizer{bands}"));
    let x0 = g.add_input("x0", 16);
    let x1 = g.add_input("x1", 16);
    let x2 = g.add_input("x2", 16);

    // Filter coefficients per band: simple integer band-pass shapes.
    let coeffs = |band: usize| -> (i64, i64, i64) {
        let b = band as i64;
        (16 + 4 * b, -(8 + 2 * b), 16 + 4 * b)
    };
    let gains = |band: usize| -> i64 { 192 - 24 * (band as i64 % 5) };

    let mut band_outs = Vec::new();
    for k in 0..bands {
        let (c0, c1, c2) = coeffs(k);
        let bpf = g
            .add_function(
                format!("bpf{k}"),
                Behavior::new(
                    3,
                    vec![Expr::binary(
                        Op::Add,
                        Expr::binary(
                            Op::Add,
                            Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(c0)),
                            Expr::binary(Op::Mul, Expr::Input(1), Expr::Const(c1)),
                        ),
                        Expr::binary(Op::Mul, Expr::Input(2), Expr::Const(c2)),
                    )],
                )
                .expect("static behaviour is well-formed"),
            )
            .expect("band names are unique");
        g.connect(x0, 0, bpf, 0, 16).expect("wiring is static");
        g.connect(x1, 0, bpf, 1, 16).expect("wiring is static");
        g.connect(x2, 0, bpf, 2, 16).expect("wiring is static");

        let gain = g
            .add_function(
                format!("gain{k}"),
                Behavior::new(
                    1,
                    vec![Expr::binary(
                        Op::Shr,
                        Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(gains(k))),
                        Expr::Const(8),
                    )],
                )
                .expect("static behaviour is well-formed"),
            )
            .expect("gain names are unique");
        g.connect(bpf, 0, gain, 0, 32).expect("wiring is static");
        band_outs.push(gain);
    }

    // Balanced adder tree.
    let mut level = band_outs;
    let mut adder = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let a = g
                    .add_function(format!("sum{adder}"), Behavior::binary(Op::Add))
                    .expect("adder names are unique");
                adder += 1;
                g.connect(pair[0], 0, a, 0, 32).expect("wiring is static");
                g.connect(pair[1], 0, a, 1, 32).expect("wiring is static");
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let y = g.add_output("y", 32);
    g.connect(level[0], 0, y, 0, 32).expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    g
}

/// Build the fuzzy controller of the paper's case study.
///
/// Two crisp inputs (`err`, the control error, and `derr`, its derivative)
/// are fuzzified through four triangular membership functions each; a 4×4
/// rule matrix computes rule activations with the *min* t-norm; the output
/// is defuzzified with a weighted-average (centre-of-gravity) stage and
/// clipped to 8 bits.
///
/// The resulting partitioning graph has **exactly 31 nodes** — the size the
/// paper reports ("a partitioning graph containing 31 nodes").
#[must_use]
pub fn fuzzy_controller() -> PartitioningGraph {
    let mut g = PartitioningGraph::new("fuzzy");
    let err = g.add_input("err", 16);
    let derr = g.add_input("derr", 16);

    // Triangular membership: m(x) = max(0, 255 - |x - centre| * slope)
    let membership = |centre: i64, slope: i64| -> Behavior {
        Behavior::new(
            1,
            vec![Expr::binary(
                Op::Max,
                Expr::Const(0),
                Expr::binary(
                    Op::Sub,
                    Expr::Const(255),
                    Expr::binary(
                        Op::Mul,
                        Expr::unary(
                            Op::Abs,
                            Expr::binary(Op::Sub, Expr::Input(0), Expr::Const(centre)),
                        ),
                        Expr::Const(slope),
                    ),
                ),
            )],
        )
        .expect("static behaviour is well-formed")
    };

    let centres = [-96i64, -32, 32, 96];
    let mut m_err = Vec::new();
    let mut m_derr = Vec::new();
    for (i, &c) in centres.iter().enumerate() {
        let me = g
            .add_function(format!("m_err{i}"), membership(c, 4))
            .expect("membership names are unique");
        g.connect(err, 0, me, 0, 16).expect("wiring is static");
        m_err.push(me);
        let md = g
            .add_function(format!("m_derr{i}"), membership(c, 4))
            .expect("membership names are unique");
        g.connect(derr, 0, md, 0, 16).expect("wiring is static");
        m_derr.push(md);
    }

    // 4x4 rule matrix with the min t-norm.
    let mut rules = Vec::new();
    for (i, &me) in m_err.iter().enumerate().take(4) {
        for (j, &md) in m_derr.iter().enumerate().take(4) {
            let r = g
                .add_function(format!("rule{i}{j}"), Behavior::binary(Op::Min))
                .expect("rule names are unique");
            g.connect(me, 0, r, 0, 16).expect("wiring is static");
            g.connect(md, 0, r, 1, 16).expect("wiring is static");
            rules.push(r);
        }
    }

    // Output singletons per rule (a standard PD-like anti-diagonal table).
    let weight = |i: usize, j: usize| -> i64 { ((i + j) as i64) * 255 / 6 };

    // Weighted numerator: sum_k w_k * rule_k, as one 16-input node.
    let mut num_expr = Expr::Const(0);
    for (k, _) in rules.iter().enumerate() {
        let (i, j) = (k / 4, k % 4);
        num_expr = Expr::binary(
            Op::Add,
            num_expr,
            Expr::binary(Op::Mul, Expr::Input(k), Expr::Const(weight(i, j))),
        );
    }
    let num = g
        .add_function(
            "agg_num",
            Behavior::new(16, vec![num_expr]).expect("static"),
        )
        .expect("unique");
    // Denominator: sum_k rule_k.
    let mut den_expr = Expr::Const(1); // +1 avoids division by zero when no rule fires
    for k in 0..rules.len() {
        den_expr = Expr::binary(Op::Add, den_expr, Expr::Input(k));
    }
    let den = g
        .add_function(
            "agg_den",
            Behavior::new(16, vec![den_expr]).expect("static"),
        )
        .expect("unique");
    for (k, &r) in rules.iter().enumerate() {
        g.connect(r, 0, num, k as u16, 16)
            .expect("wiring is static");
        g.connect(r, 0, den, k as u16, 16)
            .expect("wiring is static");
    }

    // Centre-of-gravity defuzzification.
    let defuzz = g
        .add_function("defuzz", Behavior::binary(Op::Div))
        .expect("unique");
    g.connect(num, 0, defuzz, 0, 32).expect("wiring is static");
    g.connect(den, 0, defuzz, 1, 32).expect("wiring is static");

    // Clip to the 8-bit actuator range.
    let clip = g
        .add_function(
            "clip",
            Behavior::new(
                1,
                vec![Expr::binary(
                    Op::Min,
                    Expr::Const(255),
                    Expr::binary(Op::Max, Expr::Const(0), Expr::Input(0)),
                )],
            )
            .expect("static"),
        )
        .expect("unique");
    g.connect(defuzz, 0, clip, 0, 16).expect("wiring is static");

    let u = g.add_output("u", 8);
    g.connect(clip, 0, u, 0, 8).expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    debug_assert_eq!(g.node_count(), 31);
    g
}

/// Build the incremental-synthesis workload: `bands` synthesis-heavy
/// filter nodes feeding a balanced adder tree, capped by one *tiny*
/// `scale` node whose multiplier constant is the `scale` parameter.
///
/// This is the canonical single-node-edit subject for the node-level
/// cache tier: two calls differing only in `scale` produce graphs whose
/// node sets are identical except for the `scale` node's behaviour, so
/// a warm-edit flow must re-synthesize exactly that one (cheap) node
/// while every band reuses its cached HLS design. The band behaviours
/// carry distinct per-band constants, so no two bands can share a
/// node-level cache entry by accident.
///
/// # Panics
///
/// Panics if `bands == 0`.
#[must_use]
pub fn incremental(bands: usize, scale: i64) -> PartitioningGraph {
    assert!(
        bands > 0,
        "the incremental workload needs at least one band"
    );
    let mut g = PartitioningGraph::new(format!("incr{bands}"));
    let x0 = g.add_input("x0", 16);
    let x1 = g.add_input("x1", 16);
    let x2 = g.add_input("x2", 16);

    // A deliberately expression-heavy band (~12 operations): a 3-tap
    // filter modulated by an envelope term. Every constant depends on
    // the band index, so each band is a distinct synthesis problem.
    let band_behavior = |k: usize| -> Behavior {
        let b = k as i64;
        let (c0, c1, c2) = (17 + 5 * b, -(7 + 3 * b), 13 + 2 * b);
        let taps = Expr::binary(
            Op::Add,
            Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(c0)),
                Expr::binary(Op::Mul, Expr::Input(1), Expr::Const(c1)),
            ),
            Expr::binary(Op::Mul, Expr::Input(2), Expr::Const(c2)),
        );
        let envelope = Expr::binary(
            Op::Max,
            Expr::Input(0),
            Expr::unary(Op::Neg, Expr::Input(1)),
        );
        let detail = Expr::unary(
            Op::Abs,
            Expr::binary(Op::Sub, Expr::Input(2), Expr::Const(3 + b)),
        );
        Behavior::new(
            3,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, taps, envelope),
                Expr::binary(Op::Mul, detail, Expr::Const(2 + b)),
            )],
        )
        .expect("static behaviour is well-formed")
    };

    let mut band_outs = Vec::new();
    for k in 0..bands {
        let band = g
            .add_function(format!("band{k}"), band_behavior(k))
            .expect("band names are unique");
        g.connect(x0, 0, band, 0, 16).expect("wiring is static");
        g.connect(x1, 0, band, 1, 16).expect("wiring is static");
        g.connect(x2, 0, band, 2, 16).expect("wiring is static");
        band_outs.push(band);
    }

    // Balanced adder tree over the bands.
    let mut level = band_outs;
    let mut adder = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let a = g
                    .add_function(format!("sum{adder}"), Behavior::binary(Op::Add))
                    .expect("adder names are unique");
                adder += 1;
                g.connect(pair[0], 0, a, 0, 32).expect("wiring is static");
                g.connect(pair[1], 0, a, 1, 32).expect("wiring is static");
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }

    // The tiny editable node: two operations, parameterized constant.
    let scale_node = g
        .add_function(
            "scale",
            Behavior::new(
                1,
                vec![Expr::binary(
                    Op::Shr,
                    Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(scale)),
                    Expr::Const(4),
                )],
            )
            .expect("static behaviour is well-formed"),
        )
        .expect("the scale name is unique");
    g.connect(level[0], 0, scale_node, 0, 32)
        .expect("wiring is static");
    let y = g.add_output("y", 32);
    g.connect(scale_node, 0, y, 0, 32)
        .expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    g
}

/// Build a `taps`-tap FIR filter. The environment supplies the delay line
/// as `taps` primary inputs; the graph holds one coefficient multiplier per
/// tap and a balanced adder tree.
///
/// # Panics
///
/// Panics if `taps == 0`.
#[must_use]
pub fn fir(taps: usize) -> PartitioningGraph {
    assert!(taps > 0, "a FIR filter needs at least one tap");
    let mut g = PartitioningGraph::new(format!("fir{taps}"));
    let mut products = Vec::new();
    for k in 0..taps {
        let x = g.add_input(format!("x{k}"), 16);
        // Symmetric triangular coefficient profile.
        let c = 8 + (k.min(taps - 1 - k) as i64) * 4;
        let mul = g
            .add_function(
                format!("h{k}"),
                Behavior::new(
                    1,
                    vec![Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(c))],
                )
                .expect("static"),
            )
            .expect("unique");
        g.connect(x, 0, mul, 0, 16).expect("wiring is static");
        products.push(mul);
    }
    let mut level = products;
    let mut adder = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let a = g
                    .add_function(format!("acc{adder}"), Behavior::binary(Op::Add))
                    .expect("unique");
                adder += 1;
                g.connect(pair[0], 0, a, 0, 32).expect("wiring is static");
                g.connect(pair[1], 0, a, 1, 32).expect("wiring is static");
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let y = g.add_output("y", 32);
    g.connect(level[0], 0, y, 0, 32).expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    g
}

/// Build a cascade of `sections` IIR biquad sections in direct form I.
///
/// Feedback state is supplied by the environment (the specification is a
/// per-invocation DAG): each section `k` receives its two delayed outputs
/// `y{k}d1`, `y{k}d2` as primary inputs alongside the delayed inputs, and
/// produces its output for the next section.
///
/// # Panics
///
/// Panics if `sections == 0`.
#[must_use]
pub fn iir(sections: usize) -> PartitioningGraph {
    assert!(sections > 0, "an IIR cascade needs at least one section");
    let mut g = PartitioningGraph::new(format!("iir{sections}"));
    let x0 = g.add_input("x0", 16);
    let x1 = g.add_input("x1", 16);
    let x2 = g.add_input("x2", 16);
    let mut stage_in = (x0, x1, x2);
    let mut last = None;
    for k in 0..sections {
        let yd1 = g.add_input(format!("y{k}d1"), 16);
        let yd2 = g.add_input(format!("y{k}d2"), 16);
        // Feed-forward half: b0*x + b1*xd1 + b2*xd2.
        let (b0, b1, b2) = (14 + k as i64, -(6 + k as i64), 14 + k as i64);
        let ff = g
            .add_function(
                format!("ff{k}"),
                Behavior::new(
                    3,
                    vec![Expr::binary(
                        Op::Add,
                        Expr::binary(
                            Op::Add,
                            Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(b0)),
                            Expr::binary(Op::Mul, Expr::Input(1), Expr::Const(b1)),
                        ),
                        Expr::binary(Op::Mul, Expr::Input(2), Expr::Const(b2)),
                    )],
                )
                .expect("static"),
            )
            .expect("unique");
        g.connect(stage_in.0, 0, ff, 0, 16).expect("static wiring");
        g.connect(stage_in.1, 0, ff, 1, 16).expect("static wiring");
        g.connect(stage_in.2, 0, ff, 2, 16).expect("static wiring");
        // Feedback half: - a1*yd1 - a2*yd2, then scale.
        let (a1, a2) = (9 - k as i64 % 4, 3);
        let fb = g
            .add_function(
                format!("fb{k}"),
                Behavior::new(
                    2,
                    vec![Expr::unary(
                        Op::Neg,
                        Expr::binary(
                            Op::Add,
                            Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(a1)),
                            Expr::binary(Op::Mul, Expr::Input(1), Expr::Const(a2)),
                        ),
                    )],
                )
                .expect("static"),
            )
            .expect("unique");
        g.connect(yd1, 0, fb, 0, 16).expect("static wiring");
        g.connect(yd2, 0, fb, 1, 16).expect("static wiring");
        let sum = g
            .add_function(
                format!("sec{k}"),
                Behavior::new(
                    2,
                    vec![Expr::binary(
                        Op::Shr,
                        Expr::binary(Op::Add, Expr::Input(0), Expr::Input(1)),
                        Expr::Const(4),
                    )],
                )
                .expect("static"),
            )
            .expect("unique");
        g.connect(ff, 0, sum, 0, 32).expect("static wiring");
        g.connect(fb, 0, sum, 1, 32).expect("static wiring");
        // The next section sees this output plus its own delayed samples.
        stage_in = (sum, yd1, yd2);
        last = Some(sum);
    }
    let y = g.add_output("y", 16);
    g.connect(last.expect("sections > 0"), 0, y, 0, 16)
        .expect("static wiring");
    debug_assert!(g.validate().is_ok());
    g
}

/// Build an 8-point one-dimensional DCT-II (integer approximation): eight
/// inputs, eight outputs, a butterfly-style two-stage structure with
/// constant multipliers — the canonical data-flow dominated block of the
/// paper's era.
#[must_use]
pub fn dct8() -> PartitioningGraph {
    let mut g = PartitioningGraph::new("dct8");
    let xs: Vec<_> = (0..8).map(|i| g.add_input(format!("x{i}"), 16)).collect();
    // Stage 1: butterflies s_i = x_i + x_{7-i}, d_i = x_i - x_{7-i}.
    let mut sums = Vec::new();
    let mut diffs = Vec::new();
    for i in 0..4 {
        let s = g
            .add_function(format!("s{i}"), Behavior::binary(Op::Add))
            .expect("unique");
        g.connect(xs[i], 0, s, 0, 16).expect("static wiring");
        g.connect(xs[7 - i], 0, s, 1, 16).expect("static wiring");
        sums.push(s);
        let d = g
            .add_function(format!("d{i}"), Behavior::binary(Op::Sub))
            .expect("unique");
        g.connect(xs[i], 0, d, 0, 16).expect("static wiring");
        g.connect(xs[7 - i], 0, d, 1, 16).expect("static wiring");
        diffs.push(d);
    }
    // Stage 2: each output is a weighted combination (integer cosine
    // table, scaled by 256 and shifted back).
    let cos = [
        [64i64, 64, 64, 64],
        [84, 35, -35, -84],
        [64, -64, -64, 64],
        [35, -84, 84, -35],
    ];
    let weighted = |g: &mut PartitioningGraph, name: String, w: [i64; 4]| {
        let mut e = Expr::Const(0);
        for (k, &c) in w.iter().enumerate() {
            e = Expr::binary(
                e_add(),
                e,
                Expr::binary(Op::Mul, Expr::Input(k), Expr::Const(c)),
            );
        }
        let e = Expr::binary(Op::Shr, e, Expr::Const(7));
        g.add_function(name, Behavior::new(4, vec![e]).expect("static"))
            .expect("unique")
    };
    fn e_add() -> Op {
        Op::Add
    }
    for (o, row) in cos.iter().enumerate() {
        // Even outputs from sums, odd outputs from diffs.
        let even = weighted(&mut g, format!("c{}", 2 * o), *row);
        for (k, &src) in sums.iter().enumerate() {
            g.connect(src, 0, even, k as u16, 32)
                .expect("static wiring");
        }
        let odd = weighted(&mut g, format!("c{}", 2 * o + 1), *row);
        for (k, &src) in diffs.iter().enumerate() {
            g.connect(src, 0, odd, k as u16, 32).expect("static wiring");
        }
    }
    for o in 0..8 {
        let y = g.add_output(format!("y{o}"), 16);
        let c = g.node_by_name(&format!("c{o}")).expect("just added");
        g.connect(c, 0, y, 0, 16).expect("static wiring");
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Configuration for [`random_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDagConfig {
    /// Number of internal function nodes.
    pub nodes: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// RNG seed; equal seeds produce identical graphs.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> RandomDagConfig {
        RandomDagConfig {
            nodes: 20,
            inputs: 3,
            outputs: 2,
            seed: 1,
        }
    }
}

/// Generate a seeded random data-flow DAG for partitioner sweeps.
///
/// Node behaviours are drawn from a DSP-flavoured pool (MACs, filters,
/// arithmetic, comparisons, the occasional division); every input port is
/// wired to a uniformly chosen earlier node, which guarantees a valid DAG.
///
/// # Panics
///
/// Panics if `nodes`, `inputs` or `outputs` is zero.
#[must_use]
pub fn random_dag(cfg: RandomDagConfig) -> PartitioningGraph {
    assert!(
        cfg.nodes > 0 && cfg.inputs > 0 && cfg.outputs > 0,
        "degenerate random DAG config"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = PartitioningGraph::new(format!("rand{}_{}", cfg.nodes, cfg.seed));
    let mut sources = Vec::new();
    for i in 0..cfg.inputs {
        sources.push(g.add_input(format!("in{i}"), 16));
    }
    let mut internals = Vec::new();
    for i in 0..cfg.nodes {
        let behavior = random_behavior(&mut rng);
        let arity = behavior.inputs();
        let node = g
            .add_function(format!("n{i}"), behavior)
            .expect("generated names are unique");
        for port in 0..arity {
            let pool_len = sources.len() + internals.len();
            let pick = rng.random_range(0..pool_len);
            let src = if pick < sources.len() {
                sources[pick]
            } else {
                internals[pick - sources.len()]
            };
            let bits = if rng.random_range(0..4) == 0 { 32 } else { 16 };
            g.connect(src, 0, node, port as u16, bits)
                .expect("ports are freshly wired");
        }
        internals.push(node);
    }
    // Outputs read from the latest nodes to keep the whole graph live.
    for o in 0..cfg.outputs {
        let y = g.add_output(format!("out{o}"), 32);
        let pick = internals[internals.len() - 1 - (o % internals.len())];
        g.connect(pick, 0, y, 0, 32).expect("fresh output port");
    }
    g.validate().expect("generator produces valid DAGs");
    g
}

/// Build a control-dominated Moore-machine step function with `states`
/// states reacting to `events` event inputs — the kind of
/// comparison/mux-heavy next-state logic that partitions very
/// differently from the data-flow filters above (cheap in software,
/// wide but shallow in hardware).
///
/// Inputs are the current `state` code plus `ev0..ev{events-1}`; the two
/// outputs are the `next` state code and the selected `act` actuation
/// word. Every state owns a guard (`Eq` against its code), a next-state
/// candidate (a mux cascade over thresholded events) and an action
/// term; two mux cascades select among them.
///
/// Node count grows as `5 * states + events + 1`, so `states` in the
/// tens to hundreds spans the 10–100× zoo range.
///
/// # Panics
///
/// Panics if `states < 2` or `events == 0`.
#[must_use]
pub fn state_machine(states: usize, events: usize) -> PartitioningGraph {
    assert!(states >= 2, "a state machine needs at least two states");
    assert!(events > 0, "a state machine needs at least one event");
    let mut g = PartitioningGraph::new(format!("fsm{states}x{events}"));
    let state = g.add_input("state", 8);
    let evs: Vec<_> = (0..events)
        .map(|k| g.add_input(format!("ev{k}"), 8))
        .collect();

    let mut guards = Vec::new();
    let mut nexts = Vec::new();
    let mut acts = Vec::new();
    for s in 0..states {
        let code = s as i64;
        // Guard: are we in state `s`?
        let guard = g
            .add_function(
                format!("is{s}"),
                Behavior::new(
                    1,
                    vec![Expr::binary(Op::Eq, Expr::Input(0), Expr::Const(code))],
                )
                .expect("static behaviour is well-formed"),
            )
            .expect("guard names are unique");
        g.connect(state, 0, guard, 0, 8).expect("wiring is static");
        guards.push(guard);

        // Next-state candidate: a priority mux cascade over thresholded
        // events — `if ev0 > t0 then s+1 elif ev1 <= t1 then s+2 ... else s`.
        let mut next_expr = Expr::Const(code);
        for (k, _) in evs.iter().enumerate().rev() {
            let threshold = Expr::Const(((s + 3 * k) % 7) as i64);
            let cond = if (s + k) % 2 == 0 {
                Expr::binary(Op::Lt, threshold, Expr::Input(k))
            } else {
                Expr::binary(Op::Le, Expr::Input(k), threshold)
            };
            let succ = Expr::Const(((s + k + 1) % states) as i64);
            next_expr = Expr::mux(cond, succ, next_expr);
        }
        let next = g
            .add_function(
                format!("nx{s}"),
                Behavior::new(events, vec![next_expr]).expect("static behaviour is well-formed"),
            )
            .expect("candidate names are unique");
        for (k, &ev) in evs.iter().enumerate() {
            g.connect(ev, 0, next, k as u16, 8)
                .expect("wiring is static");
        }
        nexts.push(next);

        // Per-state actuation term: a small weighted sum of the events.
        let mut act_expr = Expr::Const(code * 3);
        for (k, _) in evs.iter().enumerate() {
            act_expr = Expr::binary(
                Op::Add,
                act_expr,
                Expr::binary(
                    Op::Mul,
                    Expr::Input(k),
                    Expr::Const(1 + ((s + k) % 4) as i64),
                ),
            );
        }
        let act = g
            .add_function(
                format!("act{s}"),
                Behavior::new(events, vec![act_expr]).expect("static behaviour is well-formed"),
            )
            .expect("action names are unique");
        for (k, &ev) in evs.iter().enumerate() {
            g.connect(ev, 0, act, k as u16, 8)
                .expect("wiring is static");
        }
        acts.push(act);
    }

    // Two mux cascades select the active state's candidate and action.
    let cascade = |g: &mut PartitioningGraph, prefix: &str, values: &[cool_ir::NodeId]| {
        let mut acc = values[0];
        for s in 1..values.len() {
            let sel = g
                .add_function(
                    format!("{prefix}{s}"),
                    Behavior::new(
                        3,
                        vec![Expr::mux(Expr::Input(0), Expr::Input(1), Expr::Input(2))],
                    )
                    .expect("static behaviour is well-formed"),
                )
                .expect("selector names are unique");
            g.connect(guards[s], 0, sel, 0, 8)
                .expect("wiring is static");
            g.connect(values[s], 0, sel, 1, 8)
                .expect("wiring is static");
            g.connect(acc, 0, sel, 2, 8).expect("wiring is static");
            acc = sel;
        }
        acc
    };
    let next_sel = cascade(&mut g, "selnx", &nexts);
    let act_sel = cascade(&mut g, "selact", &acts);

    let next_out = g.add_output("next", 8);
    g.connect(next_sel, 0, next_out, 0, 8)
        .expect("wiring is static");
    let act_out = g.add_output("act", 16);
    g.connect(act_sel, 0, act_out, 0, 16)
        .expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    g
}

/// Build a multi-rate streaming DSP chain: `stages` decimate-by-2 FIR
/// stages over a `width`-sample input window, followed by the matching
/// interpolation stages back up to full rate and an output adder tree.
///
/// Each decimation level halves the sample count (its filters "run" at
/// half the rate of the level above — in the per-invocation DAG that
/// shows up as half as many, `taps`-wide, weighted-sum nodes); each
/// interpolation level doubles it again with two-point weighted
/// averages. The mix of wide multiplier nodes at low rates and cheap
/// averaging nodes at high rates gives the partitioners a genuinely
/// rate-heterogeneous graph.
///
/// # Panics
///
/// Panics if `width` is not a positive multiple of `2^stages`, or if
/// `taps == 0` or `stages == 0`.
#[must_use]
pub fn multirate(width: usize, taps: usize, stages: usize) -> PartitioningGraph {
    assert!(taps > 0 && stages > 0, "degenerate multirate config");
    assert!(
        width >= (1 << stages) && width % (1 << stages) == 0,
        "width must be a positive multiple of 2^stages"
    );
    let mut g = PartitioningGraph::new(format!("multirate{width}x{taps}x{stages}"));
    let mut level: Vec<_> = (0..width)
        .map(|i| g.add_input(format!("x{i}"), 16))
        .collect();

    // Decimation: level k has half the nodes of level k-1; each output
    // is a taps-wide weighted sum over a stride-2 window (circular
    // indexing keeps the halving exact).
    for k in 0..stages {
        let len = level.len() / 2;
        let mut next = Vec::new();
        for i in 0..len {
            let mut e = Expr::Const(0);
            for j in 0..taps {
                let c = 5 + ((k * taps + j) % 9) as i64;
                e = Expr::binary(
                    Op::Add,
                    e,
                    Expr::binary(Op::Mul, Expr::Input(j), Expr::Const(c)),
                );
            }
            let e = Expr::binary(Op::Shr, e, Expr::Const(3));
            let node = g
                .add_function(
                    format!("dec{k}_{i}"),
                    Behavior::new(taps, vec![e]).expect("static behaviour is well-formed"),
                )
                .expect("decimator names are unique");
            for j in 0..taps {
                let src = level[(2 * i + j) % level.len()];
                g.connect(src, 0, node, j as u16, 16)
                    .expect("wiring is static");
            }
            next.push(node);
        }
        level = next;
    }

    // Interpolation: mirror the decimation, doubling with two-point
    // weighted averages until the original rate is restored.
    for k in 0..stages {
        let len = level.len() * 2;
        let mut next = Vec::new();
        for i in 0..len {
            let w = if i % 2 == 0 { 6i64 } else { 3 };
            let node = g
                .add_function(
                    format!("int{k}_{i}"),
                    Behavior::new(
                        2,
                        vec![Expr::binary(
                            Op::Shr,
                            Expr::binary(
                                Op::Add,
                                Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(w)),
                                Expr::binary(Op::Mul, Expr::Input(1), Expr::Const(8 - w)),
                            ),
                            Expr::Const(3),
                        )],
                    )
                    .expect("static behaviour is well-formed"),
                )
                .expect("interpolator names are unique");
            g.connect(level[i / 2], 0, node, 0, 16)
                .expect("wiring is static");
            g.connect(level[(i / 2 + 1) % level.len()], 0, node, 1, 16)
                .expect("wiring is static");
            next.push(node);
        }
        level = next;
    }

    // Output adder tree over the reconstructed window.
    let mut adder = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let a = g
                    .add_function(format!("mix{adder}"), Behavior::binary(Op::Add))
                    .expect("adder names are unique");
                adder += 1;
                g.connect(pair[0], 0, a, 0, 32).expect("wiring is static");
                g.connect(pair[1], 0, a, 1, 32).expect("wiring is static");
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let y = g.add_output("y", 32);
    g.connect(level[0], 0, y, 0, 32).expect("wiring is static");
    debug_assert!(g.validate().is_ok());
    g
}

/// The workload zoo: one instance per family at 10–100× the node counts
/// of the paper-sized designs above, for design-space-exploration
/// sweeps and scaling studies. Every graph is validated; names are
/// unique across the zoo.
#[must_use]
pub fn zoo() -> Vec<PartitioningGraph> {
    vec![
        equalizer(64),
        fir(96),
        state_machine(48, 4),
        state_machine(192, 4),
        multirate(32, 4, 3),
        multirate(64, 6, 3),
        random_dag(RandomDagConfig {
            nodes: 200,
            inputs: 6,
            outputs: 4,
            seed: 11,
        }),
        random_dag(RandomDagConfig {
            nodes: 600,
            inputs: 8,
            outputs: 6,
            seed: 12,
        }),
        random_dag(RandomDagConfig {
            nodes: 2000,
            inputs: 12,
            outputs: 8,
            seed: 13,
        }),
    ]
}

fn random_behavior(rng: &mut StdRng) -> Behavior {
    match rng.random_range(0..10) {
        0 | 1 => Behavior::mac(),
        2 => Behavior::binary(Op::Add),
        3 => Behavior::binary(Op::Mul),
        4 => Behavior::binary(Op::Sub),
        5 => Behavior::binary(Op::Min),
        6 => Behavior::unary(Op::Abs),
        7 => Behavior::new(
            2,
            vec![Expr::binary(
                Op::Shr,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::Const(4),
            )],
        )
        .expect("static"),
        8 => Behavior::binary(Op::Div),
        _ => Behavior::new(
            3,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(
                    Op::Mul,
                    Expr::Input(0),
                    Expr::binary(Op::Max, Expr::Input(1), Expr::Input(2)),
                ),
                Expr::Const(7),
            )],
        )
        .expect("static"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::eval::{evaluate, input_map};
    use cool_ir::NodeKind;

    #[test]
    fn equalizer_matches_paper_shape() {
        let g = equalizer(4);
        g.validate().unwrap();
        // 3 inputs + 4 bpf + 4 gain + 3 adders + 1 output = 15.
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.primary_inputs().len(), 3);
        assert_eq!(g.primary_outputs().len(), 1);
    }

    #[test]
    fn equalizer_is_functional() {
        let g = equalizer(4);
        let out = evaluate(&g, &input_map([("x0", 100), ("x1", 50), ("x2", 25)])).unwrap();
        // Band 0: (100*16 - 50*8 + 25*16) = 1600-400+400 = 1600; gain 192>>8.
        assert_ne!(out["y"], 0);
    }

    #[test]
    fn fuzzy_has_exactly_31_nodes() {
        let g = fuzzy_controller();
        g.validate().unwrap();
        assert_eq!(
            g.node_count(),
            31,
            "the paper reports a 31-node partitioning graph"
        );
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.kind() == NodeKind::Function)
                .count(),
            28
        );
    }

    #[test]
    fn fuzzy_output_is_clipped() {
        let g = fuzzy_controller();
        for (e, d) in [(-120i64, 0i64), (0, 0), (60, -60), (120, 120)] {
            let out = evaluate(&g, &input_map([("err", e), ("derr", d)])).unwrap();
            assert!(
                (0..=255).contains(&out["u"]),
                "u = {} out of range",
                out["u"]
            );
        }
    }

    #[test]
    fn fuzzy_responds_to_error_sign() {
        let g = fuzzy_controller();
        let low = evaluate(&g, &input_map([("err", -96), ("derr", -96)])).unwrap()["u"];
        let high = evaluate(&g, &input_map([("err", 96), ("derr", 96)])).unwrap()["u"];
        assert!(
            low < high,
            "control output must grow with the error ({low} !< {high})"
        );
    }

    #[test]
    fn incremental_edit_touches_exactly_one_node() {
        let a = incremental(8, 19);
        let b = incremental(8, 23);
        a.validate().unwrap();
        assert_eq!(a.node_count(), b.node_count());
        let changed: Vec<String> = a
            .nodes()
            .zip(b.nodes())
            .filter(|((_, na), (_, nb))| {
                na.kind() == NodeKind::Function
                    && cool_ir::hash::digest(na.behavior()) != cool_ir::hash::digest(nb.behavior())
            })
            .map(|((_, na), _)| na.name().to_string())
            .collect();
        assert_eq!(
            changed,
            vec!["scale".to_string()],
            "a scale edit must dirty exactly the scale node"
        );
    }

    #[test]
    fn incremental_is_functional_and_scale_sensitive() {
        let g = incremental(4, 16);
        let ins = input_map([("x0", 100), ("x1", 50), ("x2", 25)]);
        let base = evaluate(&g, &ins).unwrap()["y"];
        let doubled = evaluate(&incremental(4, 32), &ins).unwrap()["y"];
        assert_ne!(base, 0);
        assert_eq!(doubled, base * 2, "scale is an exact multiplier");
    }

    #[test]
    fn printed_incremental_reparses() {
        let g = incremental(6, 19);
        let text = crate::print_spec(&g);
        let g2 = crate::parse(&text).unwrap();
        let ins = input_map([("x0", 7), ("x1", -3), ("x2", 11)]);
        assert_eq!(evaluate(&g, &ins).unwrap(), evaluate(&g2, &ins).unwrap());
    }

    #[test]
    fn fir_sizes() {
        let g = fir(8);
        g.validate().unwrap();
        assert_eq!(g.primary_inputs().len(), 8);
        // 8 multipliers + 7 adders.
        assert_eq!(
            g.nodes()
                .filter(|(_, n)| n.kind() == NodeKind::Function)
                .count(),
            15
        );
    }

    #[test]
    fn random_dag_is_deterministic() {
        let a = random_dag(RandomDagConfig {
            nodes: 25,
            seed: 7,
            ..Default::default()
        });
        let b = random_dag(RandomDagConfig {
            nodes: 25,
            seed: 7,
            ..Default::default()
        });
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ins = input_map([("in0", 5), ("in1", -3), ("in2", 12)]);
        assert_eq!(evaluate(&a, &ins).unwrap(), evaluate(&b, &ins).unwrap());
    }

    #[test]
    fn random_dag_seeds_differ() {
        let a = random_dag(RandomDagConfig {
            nodes: 25,
            seed: 1,
            ..Default::default()
        });
        let b = random_dag(RandomDagConfig {
            nodes: 25,
            seed: 2,
            ..Default::default()
        });
        // Extremely unlikely to coincide in edge count and semantics.
        let ins = input_map([("in0", 5), ("in1", -3), ("in2", 12)]);
        let same = a.edge_count() == b.edge_count()
            && evaluate(&a, &ins).unwrap() == evaluate(&b, &ins).unwrap();
        assert!(!same, "different seeds should give different graphs");
    }

    #[test]
    fn iir_cascade_validates_and_runs() {
        let g = iir(3);
        g.validate().unwrap();
        let mut ins = input_map([("x0", 100), ("x1", 50), ("x2", 25)]);
        for k in 0..3 {
            ins.insert(format!("y{k}d1"), 10);
            ins.insert(format!("y{k}d2"), -5);
        }
        let out = evaluate(&g, &ins).unwrap();
        assert!(out.contains_key("y"));
    }

    #[test]
    fn dct8_shape_and_dc_term() {
        let g = dct8();
        g.validate().unwrap();
        assert_eq!(g.primary_inputs().len(), 8);
        assert_eq!(g.primary_outputs().len(), 8);
        // Constant input: every AC output is 0, DC term is positive.
        let ins: std::collections::BTreeMap<String, i64> =
            (0..8).map(|i| (format!("x{i}"), 100)).collect();
        let out = evaluate(&g, &ins).unwrap();
        assert!(out["y0"] > 0, "DC term must be positive, got {}", out["y0"]);
        assert_eq!(out["y2"], 0, "symmetric input has no y2 component");
    }

    #[test]
    fn dct8_linearity() {
        let g = dct8();
        let a: std::collections::BTreeMap<String, i64> = (0..8)
            .map(|i| (format!("x{i}"), 10 * i64::from(i as u8)))
            .collect();
        let doubled: std::collections::BTreeMap<String, i64> = (0..8)
            .map(|i| (format!("x{i}"), 20 * i64::from(i as u8)))
            .collect();
        let oa = evaluate(&g, &a).unwrap();
        let od = evaluate(&g, &doubled).unwrap();
        // Integer shifts break exact 2x, but monotone scaling must hold.
        for o in 0..8 {
            let (va, vd) = (oa[&format!("y{o}")], od[&format!("y{o}")]);
            assert!((vd - 2 * va).abs() <= 2, "y{o}: {va} vs {vd}");
        }
    }

    #[test]
    fn fuzzy_spec_prints_to_hundreds_of_lines() {
        // The paper's fuzzy spec was "about 900 lines" of VHDL-subset; our
        // DSL is terser but must still be a substantial document.
        let g = fuzzy_controller();
        let lines = crate::printer::spec_line_count(&g);
        assert!(lines > 50, "got {lines} lines");
    }

    #[test]
    fn printed_fuzzy_reparses() {
        let g = fuzzy_controller();
        let text = crate::print_spec(&g);
        let g2 = crate::parse(&text).unwrap();
        assert_eq!(g2.node_count(), 31);
        let ins = input_map([("err", 40), ("derr", -20)]);
        assert_eq!(evaluate(&g, &ins).unwrap(), evaluate(&g2, &ins).unwrap());
    }
}
