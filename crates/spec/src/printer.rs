//! Pretty-printer: renders a partitioning graph back to specification text.
//!
//! Round-tripping (`parse(print_spec(&g))` reproduces `g`) is covered by
//! tests; the printed form is also what the case-study report counts as
//! "specification lines" (the paper quotes ~900 lines for the fuzzy
//! controller).

use std::fmt::Write as _;

use cool_ir::{Expr, NodeKind, PartitioningGraph};

/// Render `g` as specification source text.
#[must_use]
pub fn print_spec(g: &PartitioningGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "design {};", g.name());
    let _ = writeln!(s);
    for (_, n) in g.nodes() {
        match n.kind() {
            NodeKind::Input => {
                let bits = g
                    .edges()
                    .find(|(_, e)| e.src == g.node_by_name(n.name()).expect("own node"))
                    .map_or(16, |(_, e)| e.bits);
                let _ = writeln!(s, "input {} : {};", n.name(), bits);
            }
            NodeKind::Output => {
                let bits = g
                    .edges()
                    .find(|(_, e)| e.dst == g.node_by_name(n.name()).expect("own node"))
                    .map_or(16, |(_, e)| e.bits);
                let _ = writeln!(s, "output {} : {};", n.name(), bits);
            }
            NodeKind::Function => {
                let _ = writeln!(s, "node {} = {};", n.name(), behavior_text(n.behavior()));
            }
        }
    }
    let _ = writeln!(s);
    for (_, e) in g.edges() {
        let src = g.node(e.src).expect("edge endpoints exist").name();
        let dst = g.node(e.dst).expect("edge endpoints exist").name();
        let _ = writeln!(
            s,
            "connect {}.{} -> {}.{} : {};",
            src, e.src_port, dst, e.dst_port, e.bits
        );
    }
    s
}

fn behavior_text(b: &cool_ir::Behavior) -> String {
    let mut s = format!("expr({}) {{ ", b.inputs());
    for (i, e) in b.output_exprs().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&expr_text(e));
    }
    s.push_str(" }");
    s
}

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Input(i) => format!("in{i}"),
        Expr::Const(c) => format!("{c}"),
        Expr::Apply(op, args) => {
            let mut s = format!("({}", op.mnemonic());
            for a in args {
                s.push(' ');
                s.push_str(&expr_text(a));
            }
            s.push(')');
            s
        }
    }
}

/// Count the lines of the printed specification (the case-study metric).
#[must_use]
pub fn spec_line_count(g: &PartitioningGraph) -> usize {
    print_spec(g).lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use cool_ir::eval::{evaluate, input_map};

    #[test]
    fn round_trip_preserves_semantics() {
        let src = "design rt; input a : 16; input b : 16;
            node f = expr(2) { (max in0 (neg in1)), (min in0 in1) };
            output p : 16; output q : 16;
            connect a -> f.0; connect b -> f.1;
            connect f.0 -> p; connect f.1 -> q;";
        let g1 = parse(src).unwrap();
        let printed = print_spec(&g1);
        let g2 = parse(&printed).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        let ins = input_map([("a", -3), ("b", 8)]);
        assert_eq!(evaluate(&g1, &ins).unwrap(), evaluate(&g2, &ins).unwrap());
    }

    #[test]
    fn line_count_positive() {
        let g = parse(
            "design d; input a : 8; node f = neg; output y : 8; connect a -> f; connect f -> y;",
        )
        .unwrap();
        assert!(spec_line_count(&g) >= 5);
    }
}
