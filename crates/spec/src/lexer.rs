//! Tokenizer for the COOL specification language.

use std::fmt;

/// One lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token kinds of the specification language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Equals => f.write_str("`=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Lexing failure: an unexpected character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LexError {
    pub line: u32,
    pub ch: char,
}

pub(crate) fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    line,
                });
                i += 2;
            }
            '-' if bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) => {
                let (v, next) = lex_int(&bytes, i + 1);
                tokens.push(Token {
                    kind: TokenKind::Int(-v),
                    line,
                });
                i = next;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let (v, next) = lex_int(&bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            other => return Err(LexError { line, ch: other }),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn lex_int(bytes: &[char], mut i: usize) -> (i64, usize) {
    let start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let s: String = bytes[start..i].iter().collect();
    (s.parse().unwrap_or(i64::MAX), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_statement() {
        assert_eq!(
            kinds("input a : 16;"),
            vec![
                TokenKind::Ident("input".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Colon,
                TokenKind::Int(16),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a -> b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("-5"), vec![TokenKind::Int(-5), TokenKind::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment -> ignored\nb // other\nc"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.line, 1);
    }

    #[test]
    fn braces_and_parens() {
        assert_eq!(
            kinds("expr(2) { (add in0 in1) }"),
            vec![
                TokenKind::Ident("expr".into()),
                TokenKind::LParen,
                TokenKind::Int(2),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::LParen,
                TokenKind::Ident("add".into()),
                TokenKind::Ident("in0".into()),
                TokenKind::Ident("in1".into()),
                TokenKind::RParen,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }
}
