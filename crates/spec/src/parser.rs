//! Recursive-descent parser building a [`PartitioningGraph`] from source.
//!
//! Grammar (statements in any order, nodes must be declared before they are
//! connected):
//!
//! ```text
//! spec      := { stmt }
//! stmt      := "design" IDENT ";"
//!            | "input"  IDENT ":" INT ";"
//!            | "output" IDENT ":" INT ";"
//!            | "node"   IDENT "=" behavior ";"
//!            | "connect" endpoint "->" endpoint [ ":" INT ] ";"
//! behavior  := OPNAME                    -- e.g. add, mul, neg ... (fixed arity)
//!            | "mac" | "id"
//!            | "const" "(" INT ")"
//!            | "expr" "(" INT ")" "{" sexpr { "," sexpr } "}"
//! endpoint  := IDENT [ "." INT ]         -- port defaults to 0
//! sexpr     := "in" INT-suffix (e.g. in0) | INT | "(" OPNAME { sexpr } ")"
//! ```

use std::fmt;

use cool_ir::{Behavior, Expr, IrError, Op, PartitioningGraph};

use crate::lexer::{lex, LexError, Token, TokenKind};

/// Error produced while parsing a specification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// A character the lexer does not understand.
    BadChar {
        /// 1-based source line.
        line: u32,
        /// The offending character.
        ch: char,
    },
    /// A token that does not fit the grammar.
    Unexpected {
        /// 1-based source line.
        line: u32,
        /// What was found, rendered for humans.
        found: String,
        /// What the parser expected.
        expected: &'static str,
    },
    /// `connect` referenced an undeclared node.
    UnknownNode {
        /// 1-based source line.
        line: u32,
        /// The undeclared name.
        name: String,
    },
    /// An unknown behaviour or operator name.
    UnknownBehavior {
        /// 1-based source line.
        line: u32,
        /// The unknown name.
        name: String,
    },
    /// The constructed graph violates an IR invariant.
    Ir(IrError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadChar { line, ch } => {
                write!(f, "line {line}: unexpected character `{ch}`")
            }
            SpecError::Unexpected {
                line,
                found,
                expected,
            } => {
                write!(f, "line {line}: expected {expected}, found {found}")
            }
            SpecError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            SpecError::UnknownBehavior { line, name } => {
                write!(f, "line {line}: unknown behaviour `{name}`")
            }
            SpecError::Ir(e) => write!(f, "specification builds an invalid graph: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for SpecError {
    fn from(e: IrError) -> SpecError {
        SpecError::Ir(e)
    }
}

impl From<LexError> for SpecError {
    fn from(e: LexError) -> SpecError {
        SpecError::BadChar {
            line: e.line,
            ch: e.ch,
        }
    }
}

/// Parse a specification into a validated partitioning graph.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first lexical, syntactic or
/// structural problem. The returned graph has passed
/// [`PartitioningGraph::validate`].
pub fn parse(src: &str) -> Result<PartitioningGraph, SpecError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        graph: PartitioningGraph::new("unnamed"),
    };
    p.parse_spec()?;
    p.graph.validate()?;
    Ok(p.graph)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    graph: PartitioningGraph,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &'static str) -> SpecError {
        let t = self.peek();
        SpecError::Unexpected {
            line: t.line,
            found: t.kind.to_string(),
            expected,
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), SpecError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                let line = self.bump().line;
                Ok((s, line))
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, SpecError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.unexpected("an integer")),
        }
    }

    /// An integer constrained to `0..=max` (widths, arities, ports).
    /// Returning an error instead of `as`-casting keeps a malformed spec
    /// (e.g. `input a : -16;`) from silently building a garbage graph.
    fn expect_uint(&mut self, max: i64, what: &'static str) -> Result<i64, SpecError> {
        let line = self.peek().line;
        let v = self.expect_int()?;
        if (0..=max).contains(&v) {
            Ok(v)
        } else {
            Err(SpecError::Unexpected {
                line,
                found: format!("integer `{v}`"),
                expected: what,
            })
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &'static str) -> Result<(), SpecError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn parse_spec(&mut self) -> Result<(), SpecError> {
        loop {
            match self.peek().kind.clone() {
                TokenKind::Eof => return Ok(()),
                TokenKind::Ident(kw) => match kw.as_str() {
                    "design" => self.parse_design()?,
                    "input" => self.parse_io(true)?,
                    "output" => self.parse_io(false)?,
                    "node" => self.parse_node()?,
                    "connect" => self.parse_connect()?,
                    _ => return Err(self.unexpected("a statement keyword")),
                },
                _ => return Err(self.unexpected("a statement keyword")),
            }
        }
    }

    fn parse_design(&mut self) -> Result<(), SpecError> {
        self.bump(); // design
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        // Rebuild the graph with the right name, keeping already-added nodes
        // is unnecessary: `design` conventionally comes first. If it does
        // not, only the name changes.
        let mut g = PartitioningGraph::new(name);
        std::mem::swap(&mut g, &mut self.graph);
        // Re-add content if any statements preceded `design`.
        if g.node_count() > 0 {
            // Extremely unusual; rebuild by copying.
            let renamed = self.graph.name().to_string();
            let mut fresh = PartitioningGraph::new(renamed);
            std::mem::swap(&mut fresh, &mut self.graph);
            let _ = fresh;
            // Reconstruct nodes/edges from `g`.
            self.copy_graph(&g)?;
        }
        Ok(())
    }

    fn copy_graph(&mut self, g: &PartitioningGraph) -> Result<(), SpecError> {
        use cool_ir::NodeKind;
        for (_, n) in g.nodes() {
            match n.kind() {
                NodeKind::Input => {
                    self.graph.add_input(n.name(), 16);
                }
                NodeKind::Output => {
                    self.graph.add_output(n.name(), 16);
                }
                NodeKind::Function => {
                    self.graph.add_function(n.name(), n.behavior().clone())?;
                }
            }
        }
        for (_, e) in g.edges() {
            // The nodes were copied just above; if a lookup misses, the
            // source graph had duplicate names — report, don't panic.
            let src_name = g.node(e.src)?.name();
            let src = self
                .graph
                .node_by_name(src_name)
                .ok_or_else(|| SpecError::UnknownNode {
                    line: 0,
                    name: src_name.to_string(),
                })?;
            let dst_name = g.node(e.dst)?.name();
            let dst = self
                .graph
                .node_by_name(dst_name)
                .ok_or_else(|| SpecError::UnknownNode {
                    line: 0,
                    name: dst_name.to_string(),
                })?;
            self.graph
                .connect(src, e.src_port, dst, e.dst_port, e.bits)?;
        }
        Ok(())
    }

    fn parse_io(&mut self, input: bool) -> Result<(), SpecError> {
        self.bump(); // input/output
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let bits = self.expect_uint(i64::from(u16::MAX), "a bit width in 0..=65535")? as u16;
        self.expect(&TokenKind::Semi, "`;`")?;
        if input {
            self.graph.add_input(name, bits);
        } else {
            self.graph.add_output(name, bits);
        }
        Ok(())
    }

    fn parse_node(&mut self) -> Result<(), SpecError> {
        self.bump(); // node
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Equals, "`=`")?;
        let behavior = self.parse_behavior()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        self.graph.add_function(name, behavior)?;
        Ok(())
    }

    fn parse_behavior(&mut self) -> Result<Behavior, SpecError> {
        let (name, line) = self.expect_ident()?;
        match name.as_str() {
            "mac" => Ok(Behavior::mac()),
            "id" => Ok(Behavior::identity()),
            "const" => {
                self.expect(&TokenKind::LParen, "`(`")?;
                let v = self.expect_int()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(Behavior::constant(v))
            }
            "expr" => {
                self.expect(&TokenKind::LParen, "`(`")?;
                let arity = self.expect_uint(64, "an arity in 0..=64")? as usize;
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect(&TokenKind::LBrace, "`{`")?;
                let mut outputs = vec![self.parse_sexpr()?];
                while self.peek().kind == TokenKind::Comma {
                    self.bump();
                    outputs.push(self.parse_sexpr()?);
                }
                self.expect(&TokenKind::RBrace, "`}`")?;
                Ok(Behavior::new(arity, outputs)?)
            }
            op => {
                let op = op_by_name(op).ok_or(SpecError::UnknownBehavior {
                    line,
                    name: name.clone(),
                })?;
                Ok(match op.arity() {
                    1 => Behavior::unary(op),
                    2 => Behavior::binary(op),
                    _ => Behavior::new(
                        3,
                        vec![Expr::Apply(
                            op,
                            vec![Expr::Input(0), Expr::Input(1), Expr::Input(2)],
                        )],
                    )?,
                })
            }
        }
    }

    fn parse_sexpr(&mut self) -> Result<Expr, SpecError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            TokenKind::Ident(s) => {
                let line = self.bump().line;
                if let Some(rest) = s.strip_prefix("in") {
                    if let Ok(idx) = rest.parse::<usize>() {
                        return Ok(Expr::Input(idx));
                    }
                }
                Err(SpecError::UnknownBehavior { line, name: s })
            }
            TokenKind::LParen => {
                self.bump();
                let (opname, line) = self.expect_ident()?;
                let op =
                    op_by_name(&opname).ok_or(SpecError::UnknownBehavior { line, name: opname })?;
                let mut args = Vec::new();
                while self.peek().kind != TokenKind::RParen {
                    args.push(self.parse_sexpr()?);
                }
                self.bump(); // )
                if args.len() != op.arity() {
                    return Err(SpecError::Unexpected {
                        line,
                        found: format!("{} operand(s)", args.len()),
                        expected: "operator arity operands",
                    });
                }
                Ok(Expr::Apply(op, args))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_connect(&mut self) -> Result<(), SpecError> {
        self.bump(); // connect
        let (src, src_port, line) = self.parse_endpoint()?;
        self.expect(&TokenKind::Arrow, "`->`")?;
        let (dst, dst_port, _) = self.parse_endpoint()?;
        let bits = if self.peek().kind == TokenKind::Colon {
            self.bump();
            self.expect_uint(i64::from(u16::MAX), "a bit width in 0..=65535")? as u16
        } else {
            16
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        let src_id = self
            .graph
            .node_by_name(&src)
            .ok_or(SpecError::UnknownNode { line, name: src })?;
        let dst_id = self
            .graph
            .node_by_name(&dst)
            .ok_or(SpecError::UnknownNode { line, name: dst })?;
        self.graph
            .connect(src_id, src_port, dst_id, dst_port, bits)?;
        Ok(())
    }

    fn parse_endpoint(&mut self) -> Result<(String, u16, u32), SpecError> {
        let (name, line) = self.expect_ident()?;
        let port = if self.peek().kind == TokenKind::Dot {
            self.bump();
            self.expect_uint(i64::from(u16::MAX), "a port index in 0..=65535")? as u16
        } else {
            0
        };
        Ok((name, port, line))
    }
}

/// Resolve an operator mnemonic as used in specifications.
#[must_use]
pub(crate) fn op_by_name(name: &str) -> Option<Op> {
    Op::all().iter().copied().find(|op| op.mnemonic() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::eval::{evaluate, input_map};

    #[test]
    fn parses_and_evaluates_adder() {
        let g = parse(
            "design adder; input a : 16; input b : 16; node s = add; output y : 16;
             connect a -> s.0; connect b -> s.1; connect s -> y;",
        )
        .unwrap();
        assert_eq!(g.name(), "adder");
        let out = evaluate(&g, &input_map([("a", 1), ("b", 2)])).unwrap();
        assert_eq!(out["y"], 3);
    }

    #[test]
    fn parses_expr_behavior() {
        let g = parse(
            "design e; input x : 16; node f = expr(1) { (mul in0 (add in0 1)) };
             output y : 32; connect x -> f; connect f -> y : 32;",
        )
        .unwrap();
        let out = evaluate(&g, &input_map([("x", 6)])).unwrap();
        assert_eq!(out["y"], 42);
    }

    #[test]
    fn parses_const_and_mac() {
        let g = parse(
            "design m; input x : 16; node c = const(10); node m1 = mac; output y : 16;
             connect x -> m1.0; connect x -> m1.1; connect c -> m1.2; connect m1 -> y;",
        )
        .unwrap();
        let out = evaluate(&g, &input_map([("x", 5)])).unwrap();
        assert_eq!(out["y"], 35);
    }

    #[test]
    fn multi_output_expr() {
        let g = parse(
            "design s; input a : 16; input b : 16;
             node f = expr(2) { (add in0 in1), (sub in0 in1) };
             output p : 16; output q : 16;
             connect a -> f.0; connect b -> f.1;
             connect f.0 -> p; connect f.1 -> q;",
        )
        .unwrap();
        let out = evaluate(&g, &input_map([("a", 9), ("b", 4)])).unwrap();
        assert_eq!(out["p"], 13);
        assert_eq!(out["q"], 5);
    }

    #[test]
    fn unknown_node_in_connect() {
        let err = parse("design d; input a : 8; connect a -> nosuch;").unwrap_err();
        assert!(matches!(err, SpecError::UnknownNode { .. }));
    }

    #[test]
    fn unknown_behavior() {
        let err = parse("design d; node f = frobnicate;").unwrap_err();
        assert!(matches!(err, SpecError::UnknownBehavior { .. }));
    }

    #[test]
    fn syntax_error_has_line() {
        let err = parse("design d;\ninput a 16;").unwrap_err();
        match err {
            SpecError::Unexpected { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn arity_mismatch_in_sexpr() {
        let err = parse("design d; node f = expr(1) { (add in0) };").unwrap_err();
        assert!(matches!(err, SpecError::Unexpected { .. }));
    }

    #[test]
    fn invalid_graph_reported() {
        // f's input is never driven.
        let err = parse("design d; node f = neg;").unwrap_err();
        assert!(matches!(err, SpecError::Ir(_)));
    }

    #[test]
    fn display_formats() {
        let err = parse("design d; node f = frobnicate;").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        // Every entry must produce a SpecError — never a panic, never a
        // silently-wrapped garbage value.
        let cases = [
            "input a : -16;",                                          // negative width
            "design d; input a : 99999;",                              // width over u16
            "design d; node f = expr(-2) { in0 };",                    // negative arity
            "design d; node f = expr(999) { in0 };",                   // absurd arity
            "design d; input a : 8; output y : 8; connect a.-1 -> y;", // negative port
            "design d; connect -> ;",                                  // junk connect
            "node",                                                    // truncated input
            "design",                                                  // truncated input
            "design d; input a : 8; connect a -> a;",                  // self loop (IR error)
            "\u{1F980}",                                               // non-ASCII char
        ];
        for src in cases {
            let err = parse(src).expect_err(src);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn negative_width_reports_line_and_expectation() {
        let err = parse("design d;\ninput a : -4;").unwrap_err();
        match &err {
            SpecError::Unexpected { line, expected, .. } => {
                assert_eq!(*line, 2);
                assert!(expected.contains("bit width"), "{err}");
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
