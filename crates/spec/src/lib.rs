//! Specification front-end for the COOL co-design flow.
//!
//! COOL specifies systems in a subset of VHDL; all the subset carries is a
//! data-flow network of pure function nodes. This crate provides the
//! equivalent front-end for the reproduction:
//!
//! * a small textual **specification language** ([`parse`]) with the same
//!   information content (designs, typed primary I/O, nodes with data-flow
//!   behaviours, connections), plus a pretty-printer ([`print_spec`]) so
//!   that specifications round-trip;
//! * **workload generators** ([`workloads`]) for the designs the paper
//!   uses: the 4-band equalizer of Figure 2, the 31-node fuzzy controller
//!   of the results section, and parameterized FIR/random graphs for
//!   scaling experiments.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), cool_spec::SpecError> {
//! let src = "
//!     design tiny;
//!     input a : 16;
//!     input b : 16;
//!     node sum = add;
//!     output y : 16;
//!     connect a -> sum.0;
//!     connect b -> sum.1;
//!     connect sum -> y;
//! ";
//! let graph = cool_spec::parse(src)?;
//! assert_eq!(graph.node_count(), 4);
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;
mod printer;
pub mod workloads;

pub use parser::{parse, SpecError};
pub use printer::{print_spec, spec_line_count};
