//! Node-to-resource mappings: the "colours" of the coloured partitioning
//! graph produced by hardware/software partitioning.

use std::fmt;

use crate::error::IrError;
use crate::graph::{NodeId, NodeKind, PartitioningGraph};
use crate::target::Target;

/// A partitionable resource of the target: either the `i`-th processor
/// (software) or the `i`-th hardware resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Index into [`Target::processors`].
    Software(usize),
    /// Index into [`Target::hw`].
    Hardware(usize),
}

impl Resource {
    /// `true` if this is a software (processor) resource.
    #[must_use]
    pub fn is_software(self) -> bool {
        matches!(self, Resource::Software(_))
    }

    /// `true` if this is a hardware resource.
    #[must_use]
    pub fn is_hardware(self) -> bool {
        matches!(self, Resource::Hardware(_))
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Software(i) => write!(f, "sw{i}"),
            Resource::Hardware(i) => write!(f, "hw{i}"),
        }
    }
}

/// A complete node-to-resource assignment for one partitioning graph.
///
/// Primary inputs/outputs are conventionally mapped to the first software
/// resource (they are actually serviced by the synthesized I/O controller;
/// the entry merely keeps the mapping total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    assignment: Vec<Resource>,
}

impl Mapping {
    /// Create a mapping assigning every one of `node_count` nodes to `r`.
    #[must_use]
    pub fn uniform(node_count: usize, r: Resource) -> Mapping {
        Mapping {
            assignment: vec![r; node_count],
        }
    }

    /// Create a mapping from a dense per-node assignment vector.
    #[must_use]
    pub fn from_vec(assignment: Vec<Resource>) -> Mapping {
        Mapping { assignment }
    }

    /// The resource of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the mapped graph.
    #[must_use]
    pub fn resource(&self, node: NodeId) -> Resource {
        self.assignment[node.index()]
    }

    /// Reassign `node` to `r`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn assign(&mut self, node: NodeId, r: Resource) {
        self.assignment[node.index()] = r;
    }

    /// Number of mapped nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` if the mapping covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Iterate over `(node, resource)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Resource)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .map(|(i, r)| (NodeId::from_index(i), *r))
    }

    /// Nodes mapped onto `r`, in id order.
    #[must_use]
    pub fn nodes_on(&self, r: Resource) -> Vec<NodeId> {
        self.iter()
            .filter(|&(_, x)| x == r)
            .map(|(n, _)| n)
            .collect()
    }

    /// Number of function nodes (per `g`) mapped to software resources.
    #[must_use]
    pub fn software_node_count(&self, g: &PartitioningGraph) -> usize {
        self.iter()
            .filter(|&(n, r)| {
                r.is_software()
                    && g.node(n)
                        .map(|x| x.kind() == NodeKind::Function)
                        .unwrap_or(false)
            })
            .count()
    }

    /// Number of function nodes (per `g`) mapped to hardware resources.
    #[must_use]
    pub fn hardware_node_count(&self, g: &PartitioningGraph) -> usize {
        self.iter()
            .filter(|&(n, r)| {
                r.is_hardware()
                    && g.node(n)
                        .map(|x| x.kind() == NodeKind::Function)
                        .unwrap_or(false)
            })
            .count()
    }

    /// Edges of `g` whose endpoints lie on *different* resources; these are
    /// exactly the transfers that receive memory cells during co-synthesis.
    #[must_use]
    pub fn cut_edges<'g>(
        &self,
        g: &'g PartitioningGraph,
    ) -> Vec<(crate::graph::EdgeId, &'g crate::graph::Edge)> {
        g.edges()
            .filter(|(_, e)| self.resource(e.src) != self.resource(e.dst))
            .collect()
    }

    /// Check the mapping is total for `g` and references only resources
    /// that exist in `target`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::IncompleteMapping`] or [`IrError::UnknownResource`].
    pub fn validate(&self, g: &PartitioningGraph, target: &Target) -> Result<(), IrError> {
        if self.assignment.len() != g.node_count() {
            let node = NodeId::from_index(self.assignment.len().min(g.node_count()));
            return Err(IrError::IncompleteMapping { node });
        }
        for (n, r) in self.iter() {
            let ok = match r {
                Resource::Software(i) => i < target.processors.len(),
                Resource::Hardware(i) => i < target.hw.len(),
            };
            if !ok {
                let _ = n;
                return Err(IrError::UnknownResource(r.to_string()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mapping[")?;
        for (i, r) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, Op};

    fn two_node_graph() -> PartitioningGraph {
        let mut g = PartitioningGraph::new("g");
        let a = g.add_input("a", 16);
        let f = g.add_function("f", Behavior::unary(Op::Neg)).unwrap();
        let h = g.add_function("h", Behavior::unary(Op::Abs)).unwrap();
        let y = g.add_output("y", 16);
        g.connect(a, 0, f, 0, 16).unwrap();
        g.connect(f, 0, h, 0, 16).unwrap();
        g.connect(h, 0, y, 0, 16).unwrap();
        g
    }

    #[test]
    fn uniform_mapping_has_no_cut_edges() {
        let g = two_node_graph();
        let m = Mapping::uniform(g.node_count(), Resource::Software(0));
        assert!(m.cut_edges(&g).is_empty());
    }

    #[test]
    fn cut_edges_found() {
        let g = two_node_graph();
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        m.assign(g.node_by_name("h").unwrap(), Resource::Hardware(0));
        // f->h and h->y cross the partition boundary.
        assert_eq!(m.cut_edges(&g).len(), 2);
    }

    #[test]
    fn counts_by_kind() {
        let g = two_node_graph();
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        m.assign(g.node_by_name("h").unwrap(), Resource::Hardware(1));
        assert_eq!(m.software_node_count(&g), 1);
        assert_eq!(m.hardware_node_count(&g), 1);
    }

    #[test]
    fn validate_checks_resources() {
        let g = two_node_graph();
        let t = Target::minimal(); // 1 processor, 1 fpga
        let m = Mapping::uniform(g.node_count(), Resource::Hardware(3));
        assert!(matches!(
            m.validate(&g, &t),
            Err(IrError::UnknownResource(_))
        ));
        let short = Mapping::from_vec(vec![Resource::Software(0)]);
        assert!(matches!(
            short.validate(&g, &t),
            Err(IrError::IncompleteMapping { .. })
        ));
        let ok = Mapping::uniform(g.node_count(), Resource::Software(0));
        ok.validate(&g, &t).unwrap();
    }

    #[test]
    fn nodes_on_filters() {
        let g = two_node_graph();
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        let h = g.node_by_name("h").unwrap();
        m.assign(h, Resource::Hardware(0));
        assert_eq!(m.nodes_on(Resource::Hardware(0)), vec![h]);
    }
}
