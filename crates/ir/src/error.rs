//! Error type shared by all IR-level operations.

use std::fmt;

use crate::graph::{EdgeId, NodeId};

/// Errors produced while building, validating or evaluating the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A node id referenced a node that does not exist in the graph.
    UnknownNode(NodeId),
    /// An edge id referenced an edge that does not exist in the graph.
    UnknownEdge(EdgeId),
    /// A port index was out of range for the node's behaviour.
    PortOutOfRange {
        /// Node whose port was addressed.
        node: NodeId,
        /// The offending port index.
        port: u16,
        /// Number of ports of that direction the node actually has.
        arity: u16,
        /// `true` if an input port was addressed, `false` for an output port.
        input: bool,
    },
    /// Two edges drive the same input port.
    InputDrivenTwice {
        /// Node whose input port is driven twice.
        node: NodeId,
        /// The doubly-driven input port.
        port: u16,
    },
    /// An input port of a node is not driven by any edge.
    UndrivenInput {
        /// Node with the floating input.
        node: NodeId,
        /// The undriven input port.
        port: u16,
    },
    /// The graph contains a cycle, which data-flow specifications must not.
    Cycle {
        /// A node that participates in the cycle.
        witness: NodeId,
    },
    /// A primary input required for evaluation was not supplied.
    MissingInput(String),
    /// Two graph items were given the same name.
    DuplicateName(String),
    /// A behaviour expression referenced an input that the node lacks.
    BadExprInput {
        /// Index used by the expression.
        index: usize,
        /// Number of inputs the behaviour declares.
        arity: usize,
    },
    /// The behaviour declares zero outputs, which is not executable.
    NoOutputs,
    /// A bit width of zero or above 64 was requested.
    BadBitWidth(u16),
    /// A resource referenced by a mapping does not exist in the target.
    UnknownResource(String),
    /// The mapping does not cover every node of the graph.
    IncompleteMapping {
        /// First node found without a mapping entry.
        node: NodeId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownNode(id) => write!(f, "unknown node {id}"),
            IrError::UnknownEdge(id) => write!(f, "unknown edge {id}"),
            IrError::PortOutOfRange {
                node,
                port,
                arity,
                input,
            } => write!(
                f,
                "{} port {port} out of range for node {node} with arity {arity}",
                if *input { "input" } else { "output" }
            ),
            IrError::InputDrivenTwice { node, port } => {
                write!(f, "input port {port} of node {node} is driven by two edges")
            }
            IrError::UndrivenInput { node, port } => {
                write!(f, "input port {port} of node {node} is not driven")
            }
            IrError::Cycle { witness } => {
                write!(f, "graph contains a cycle through node {witness}")
            }
            IrError::MissingInput(name) => {
                write!(f, "primary input `{name}` was not supplied")
            }
            IrError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            IrError::BadExprInput { index, arity } => {
                write!(
                    f,
                    "expression reads input {index} but behaviour has {arity} inputs"
                )
            }
            IrError::NoOutputs => write!(f, "behaviour declares zero outputs"),
            IrError::BadBitWidth(w) => write!(f, "bit width {w} is not in 1..=64"),
            IrError::UnknownResource(name) => write!(f, "unknown resource `{name}`"),
            IrError::IncompleteMapping { node } => {
                write!(f, "mapping does not assign node {node} to a resource")
            }
        }
    }
}

impl std::error::Error for IrError {}
