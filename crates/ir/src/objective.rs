//! Typed optimization objectives and budget constraints.
//!
//! The paper's flow optimizes one implicit scalar — schedule makespan,
//! lightly traded against communication and area through the MILP's
//! weight knobs. Design-space exploration needs that objective to be a
//! *value*: something a session can declare, a cache key can absorb,
//! and the `coold` wire format can carry. [`Objective`] is that value,
//! shared by all three partitioners (exact MILP, heuristic clustering,
//! GA), and [`BudgetConstraint`] is the epsilon-constraint companion —
//! the area bound a Pareto sweep varies while the objective stays
//! fixed.
//!
//! Every objective reduces to a `(time, comm, area)` weight triple via
//! [`Objective::weights`]; the named variants are canonical presets
//! (with [`Objective::Makespan`] reproducing the historical defaults
//! exactly), and [`Objective::Blend`] carries explicit weights for
//! everything else — including specs migrated from the deprecated
//! `--milp-comm-weight` knob.

use std::fmt;
use std::str::FromStr;

use crate::codec::{Codec, CodecError, Decoder, Encoder};
use crate::hash::{ContentHash, ContentHasher};
use crate::target::Target;

/// What a partitioner should minimize.
///
/// The named variants are presets over the underlying weight triple;
/// [`Objective::weights`] is the single point where they are resolved,
/// so all partitioners agree on what e.g. "area-first" means.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Objective {
    /// Minimize the schedule makespan (the paper's objective, and the
    /// historical default: weights `(1.0, 1.0, 0.05)`).
    #[default]
    Makespan,
    /// Minimize hardware area, keeping only a light pull on time and
    /// communication to break ties (`(0.05, 0.05, 1.0)`).
    Area,
    /// Minimize cut communication volume (`(0.05, 1.0, 0.05)`).
    CommVolume,
    /// An explicit weighted blend of the three cost terms.
    Blend {
        /// Weight on node execution time.
        time_weight: f64,
        /// Weight on cut communication cycles.
        comm_weight: f64,
        /// Weight on hardware area (CLBs).
        area_weight: f64,
    },
}

impl Objective {
    /// An explicit [`Objective::Blend`].
    #[must_use]
    pub fn blend(time_weight: f64, comm_weight: f64, area_weight: f64) -> Objective {
        Objective::Blend {
            time_weight,
            comm_weight,
            area_weight,
        }
    }

    /// The `(time, comm, area)` weight triple this objective resolves
    /// to. [`Objective::Makespan`] reproduces the pre-typed defaults
    /// byte-for-byte, so a default flow is unchanged by the refactor.
    #[must_use]
    pub fn weights(self) -> (f64, f64, f64) {
        match self {
            Objective::Makespan => (1.0, 1.0, 0.05),
            Objective::Area => (0.05, 0.05, 1.0),
            Objective::CommVolume => (0.05, 1.0, 0.05),
            Objective::Blend {
                time_weight,
                comm_weight,
                area_weight,
            } => (time_weight, comm_weight, area_weight),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Makespan => f.write_str("makespan"),
            Objective::Area => f.write_str("area"),
            Objective::CommVolume => f.write_str("comm"),
            Objective::Blend {
                time_weight,
                comm_weight,
                area_weight,
            } => write!(f, "blend:{time_weight},{comm_weight},{area_weight}"),
        }
    }
}

impl FromStr for Objective {
    type Err = String;

    /// Parse `makespan`, `area`, `comm`, or `blend:T,C,A`.
    fn from_str(s: &str) -> Result<Objective, String> {
        match s {
            "makespan" => return Ok(Objective::Makespan),
            "area" => return Ok(Objective::Area),
            "comm" => return Ok(Objective::CommVolume),
            _ => {}
        }
        let err = || {
            format!(
                "unknown objective `{s}`; expected makespan, area, comm, \
                 or blend:TIME,COMM,AREA (e.g. blend:1,0.3,0.05)"
            )
        };
        let rest = s.strip_prefix("blend:").ok_or_else(err)?;
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return Err(err());
        }
        let parse = |p: &str| -> Result<f64, String> {
            let w: f64 = p.trim().parse().map_err(|_| err())?;
            if !w.is_finite() || w < 0.0 {
                return Err(format!(
                    "objective weight `{p}` must be a finite non-negative number"
                ));
            }
            Ok(w)
        };
        Ok(Objective::blend(
            parse(parts[0])?,
            parse(parts[1])?,
            parse(parts[2])?,
        ))
    }
}

impl ContentHash for Objective {
    fn content_hash(&self, h: &mut ContentHasher) {
        // Variants hash their *identity*, not their resolved weights:
        // `Makespan` and an equal explicit blend are different declared
        // intents and may diverge (e.g. if presets are retuned), so
        // they must not share cache entries.
        match self {
            Objective::Makespan => h.write_u8(0),
            Objective::Area => h.write_u8(1),
            Objective::CommVolume => h.write_u8(2),
            Objective::Blend {
                time_weight,
                comm_weight,
                area_weight,
            } => {
                h.write_u8(3);
                h.write_f64(*time_weight);
                h.write_f64(*comm_weight);
                h.write_f64(*area_weight);
            }
        }
    }
}

impl Codec for Objective {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Objective::Makespan => e.put_u8(0),
            Objective::Area => e.put_u8(1),
            Objective::CommVolume => e.put_u8(2),
            Objective::Blend {
                time_weight,
                comm_weight,
                area_weight,
            } => {
                e.put_u8(3);
                e.put_f64(*time_weight);
                e.put_f64(*comm_weight);
                e.put_f64(*area_weight);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Objective, CodecError> {
        match d.take_u8()? {
            0 => Ok(Objective::Makespan),
            1 => Ok(Objective::Area),
            2 => Ok(Objective::CommVolume),
            3 => Ok(Objective::Blend {
                time_weight: d.take_f64()?,
                comm_weight: d.take_f64()?,
                area_weight: d.take_f64()?,
            }),
            tag => Err(CodecError::InvalidTag {
                type_name: "Objective",
                tag,
            }),
        }
    }
}

/// The epsilon constraint of a Pareto sweep: a hardware-area budget
/// applied uniformly to every FPGA of a target board.
///
/// Matching the CLI's `BOARD@N` convention, [`BudgetConstraint::apply`]
/// *sets* each FPGA's CLB capacity to the budget (it does not clamp),
/// so a budget above the native capacity explores the relaxed region
/// the same way `fuzzy@100000` does. Capacity changes are exactly what
/// [`crate::target::Target`]-retargeting tolerates, so every point of a
/// sweep can share one estimated cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BudgetConstraint {
    /// CLB capacity each FPGA is set to.
    pub max_clbs_per_fpga: u32,
}

impl BudgetConstraint {
    /// A budget of `clbs` CLBs per FPGA.
    #[must_use]
    pub fn new(clbs: u32) -> BudgetConstraint {
        BudgetConstraint {
            max_clbs_per_fpga: clbs,
        }
    }

    /// `target` with every FPGA's CLB capacity set to this budget.
    #[must_use]
    pub fn apply(&self, target: &Target) -> Target {
        let mut constrained = target.clone();
        for hw in &mut constrained.hw {
            hw.clb_capacity = self.max_clbs_per_fpga;
        }
        constrained
    }
}

impl fmt::Display for BudgetConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.max_clbs_per_fpga)
    }
}

impl ContentHash for BudgetConstraint {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u32(self.max_clbs_per_fpga);
    }
}

impl Codec for BudgetConstraint {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.max_clbs_per_fpga);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<BudgetConstraint, CodecError> {
        Ok(BudgetConstraint {
            max_clbs_per_fpga: d.take_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use crate::hash::digest;

    #[test]
    fn makespan_preserves_historical_weights() {
        assert_eq!(Objective::default(), Objective::Makespan);
        assert_eq!(Objective::Makespan.weights(), (1.0, 1.0, 0.05));
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["makespan", "area", "comm", "blend:1,0.3,0.05"] {
            let o: Objective = s.parse().unwrap();
            let back: Objective = o.to_string().parse().unwrap();
            assert_eq!(o, back);
        }
        assert!("banana".parse::<Objective>().is_err());
        assert!("blend:1,2".parse::<Objective>().is_err());
        assert!("blend:1,-2,3".parse::<Objective>().is_err());
        assert!("blend:1,NaN,3".parse::<Objective>().is_err());
    }

    #[test]
    fn presets_and_equal_blends_hash_apart() {
        let preset = Objective::Makespan;
        let (t, c, a) = preset.weights();
        let blend = Objective::blend(t, c, a);
        assert_ne!(digest(&preset), digest(&blend));
    }

    #[test]
    fn codec_round_trips() {
        for o in [
            Objective::Makespan,
            Objective::Area,
            Objective::CommVolume,
            Objective::blend(2.0, 0.25, 0.5),
        ] {
            assert_eq!(from_bytes::<Objective>(&to_bytes(&o)).unwrap(), o);
        }
        let b = BudgetConstraint::new(96);
        assert_eq!(from_bytes::<BudgetConstraint>(&to_bytes(&b)).unwrap(), b);
    }

    #[test]
    fn budget_sets_every_fpga() {
        let base = Target::fuzzy_board();
        let capped = BudgetConstraint::new(64).apply(&base);
        assert!(capped.hw.iter().all(|hw| hw.clb_capacity == 64));
        // Relaxation above native capacity is allowed (matches BOARD@N).
        let relaxed = BudgetConstraint::new(100_000).apply(&base);
        assert!(relaxed.hw.iter().all(|hw| hw.clb_capacity == 100_000));
        // Everything else is untouched.
        assert_eq!(capped.processors, base.processors);
        assert_eq!(capped.bus, base.bus);
    }
}
