//! Node behaviours: side-effect free data-flow expressions.
//!
//! COOL specifications are data-flow dominated; each node of the
//! partitioning graph computes a pure function of its inputs. We represent
//! that function as one expression tree per output so that
//!
//! * the reference evaluator can execute the specification,
//! * the cost model can count operations for software timing estimation, and
//! * the HLS substrate can build a control/data-flow graph from it.

use std::fmt;

use crate::error::IrError;

/// Primitive operator appearing in a behaviour expression.
///
/// The operator set mirrors what a data-flow dominated 1998 DSP application
/// needs: arithmetic, saturating helpers, bitwise logic, comparisons and a
/// multiplexer. All semantics are defined on `i64` two's-complement values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Op {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields zero (hardware default).
    Div,
    /// Remainder; remainder by zero yields zero.
    Rem,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left by the right operand (masked to 0..63).
    Shl,
    /// Arithmetic shift right by the right operand (masked to 0..63).
    Shr,
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Absolute value.
    Abs,
    /// `1` if less-than, else `0`.
    Lt,
    /// `1` if less-or-equal, else `0`.
    Le,
    /// `1` if equal, else `0`.
    Eq,
    /// Ternary multiplexer: `cond != 0 ? a : b`.
    Mux,
}

impl Op {
    /// Number of operands the operator consumes.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Op::Neg | Op::Not | Op::Abs => 1,
            Op::Mux => 3,
            _ => 2,
        }
    }

    /// `true` for operators that commute, used by CSE and the HLS binder.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Mul | Op::Min | Op::Max | Op::And | Op::Or | Op::Xor | Op::Eq
        )
    }

    /// Short lowercase mnemonic, stable across releases (used in reports,
    /// VHDL comments and generated C).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::Min => "min",
            Op::Max => "max",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Neg => "neg",
            Op::Not => "not",
            Op::Abs => "abs",
            Op::Lt => "lt",
            Op::Le => "le",
            Op::Eq => "eq",
            Op::Mux => "mux",
        }
    }

    /// All operators, in a fixed order (useful for cost tables and tests).
    #[must_use]
    pub fn all() -> &'static [Op] {
        &[
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Min,
            Op::Max,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Shl,
            Op::Shr,
            Op::Neg,
            Op::Not,
            Op::Abs,
            Op::Lt,
            Op::Le,
            Op::Eq,
            Op::Mux,
        ]
    }

    /// Apply the operator to already-evaluated operands.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`; expressions are validated at
    /// construction time so this cannot happen for well-formed behaviours.
    #[must_use]
    pub fn apply(self, args: &[i64]) -> i64 {
        assert_eq!(
            args.len(),
            self.arity(),
            "operand count mismatch for {self}"
        );
        match self {
            Op::Add => args[0].wrapping_add(args[1]),
            Op::Sub => args[0].wrapping_sub(args[1]),
            Op::Mul => args[0].wrapping_mul(args[1]),
            Op::Div => {
                if args[1] == 0 {
                    0
                } else {
                    args[0].wrapping_div(args[1])
                }
            }
            Op::Rem => {
                if args[1] == 0 {
                    0
                } else {
                    args[0].wrapping_rem(args[1])
                }
            }
            Op::Min => args[0].min(args[1]),
            Op::Max => args[0].max(args[1]),
            Op::And => args[0] & args[1],
            Op::Or => args[0] | args[1],
            Op::Xor => args[0] ^ args[1],
            Op::Shl => args[0].wrapping_shl((args[1] & 63) as u32),
            Op::Shr => args[0].wrapping_shr((args[1] & 63) as u32),
            Op::Neg => args[0].wrapping_neg(),
            Op::Not => !args[0],
            Op::Abs => args[0].wrapping_abs(),
            Op::Lt => i64::from(args[0] < args[1]),
            Op::Le => i64::from(args[0] <= args[1]),
            Op::Eq => i64::from(args[0] == args[1]),
            Op::Mux => {
                if args[0] != 0 {
                    args[1]
                } else {
                    args[2]
                }
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A behaviour expression tree.
///
/// Leaves are node input ports ([`Expr::Input`]) and constants
/// ([`Expr::Const`]); inner vertices apply an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Value arriving on the node's `n`-th input port.
    Input(usize),
    /// Compile-time constant.
    Const(i64),
    /// Operator application.
    Apply(Op, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a unary application.
    #[must_use]
    pub fn unary(op: Op, a: Expr) -> Expr {
        Expr::Apply(op, vec![a])
    }

    /// Convenience constructor for a binary application.
    #[must_use]
    pub fn binary(op: Op, a: Expr, b: Expr) -> Expr {
        Expr::Apply(op, vec![a, b])
    }

    /// Convenience constructor for a multiplexer `cond ? t : e`.
    #[must_use]
    pub fn mux(cond: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Apply(Op::Mux, vec![cond, t, e])
    }

    /// Evaluate the expression against the node's input values.
    ///
    /// # Panics
    ///
    /// Panics if the expression reads an input beyond `inputs.len()`;
    /// validated behaviours cannot trigger this.
    #[must_use]
    pub fn evaluate(&self, inputs: &[i64]) -> i64 {
        match self {
            Expr::Input(i) => inputs[*i],
            Expr::Const(c) => *c,
            Expr::Apply(op, args) => {
                let vals: Vec<i64> = args.iter().map(|a| a.evaluate(inputs)).collect();
                op.apply(&vals)
            }
        }
    }

    /// Largest input index read by the expression, if any input is read.
    #[must_use]
    pub fn max_input(&self) -> Option<usize> {
        match self {
            Expr::Input(i) => Some(*i),
            Expr::Const(_) => None,
            Expr::Apply(_, args) => args.iter().filter_map(Expr::max_input).max(),
        }
    }

    /// Total number of operator applications in the tree.
    #[must_use]
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Input(_) | Expr::Const(_) => 0,
            Expr::Apply(_, args) => 1 + args.iter().map(Expr::op_count).sum::<usize>(),
        }
    }

    /// Visit every operator in the tree, pre-order.
    pub fn for_each_op(&self, f: &mut impl FnMut(Op)) {
        if let Expr::Apply(op, args) = self {
            f(*op);
            for a in args {
                a.for_each_op(f);
            }
        }
    }

    /// Depth of the tree counted in operator applications (leaves are 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Expr::Input(_) | Expr::Const(_) => 0,
            Expr::Apply(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Input(i) => write!(f, "in{i}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Apply(op, args) => {
                write!(f, "({op}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The pure function computed by a partitioning-graph node.
///
/// A behaviour has a fixed number of input ports, and one expression per
/// output port. Behaviours are validated on construction: expressions may
/// only read declared inputs, operator arities must match, and at least one
/// output must exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Behavior {
    inputs: usize,
    outputs: Vec<Expr>,
}

impl Behavior {
    /// Create a behaviour with `inputs` input ports and the given output
    /// expressions.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NoOutputs`] if `outputs` is empty,
    /// [`IrError::BadExprInput`] if an expression reads an undeclared input.
    pub fn new(inputs: usize, outputs: Vec<Expr>) -> Result<Behavior, IrError> {
        if outputs.is_empty() {
            return Err(IrError::NoOutputs);
        }
        for e in &outputs {
            validate_arity(e)?;
            if let Some(max) = e.max_input() {
                if max >= inputs {
                    return Err(IrError::BadExprInput {
                        index: max,
                        arity: inputs,
                    });
                }
            }
        }
        Ok(Behavior { inputs, outputs })
    }

    /// A behaviour applying one binary operator to two inputs.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not binary.
    #[must_use]
    pub fn binary(op: Op) -> Behavior {
        assert_eq!(op.arity(), 2, "Behavior::binary needs a binary operator");
        Behavior {
            inputs: 2,
            outputs: vec![Expr::binary(op, Expr::Input(0), Expr::Input(1))],
        }
    }

    /// A behaviour applying one unary operator to one input.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not unary.
    #[must_use]
    pub fn unary(op: Op) -> Behavior {
        assert_eq!(op.arity(), 1, "Behavior::unary needs a unary operator");
        Behavior {
            inputs: 1,
            outputs: vec![Expr::unary(op, Expr::Input(0))],
        }
    }

    /// The identity behaviour (one input copied to one output), used for
    /// primary inputs/outputs and buffer nodes.
    #[must_use]
    pub fn identity() -> Behavior {
        Behavior {
            inputs: 1,
            outputs: vec![Expr::Input(0)],
        }
    }

    /// A constant source with no inputs.
    #[must_use]
    pub fn constant(value: i64) -> Behavior {
        Behavior {
            inputs: 0,
            outputs: vec![Expr::Const(value)],
        }
    }

    /// Multiply-accumulate `in0 * in1 + in2`, the bread-and-butter operation
    /// of the DSP workloads in the paper.
    #[must_use]
    pub fn mac() -> Behavior {
        Behavior {
            inputs: 3,
            outputs: vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::Input(2),
            )],
        }
    }

    /// Number of input ports.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The expression computed for output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= self.outputs()`.
    #[must_use]
    pub fn output_expr(&self, port: usize) -> &Expr {
        &self.outputs[port]
    }

    /// All output expressions in port order.
    #[must_use]
    pub fn output_exprs(&self) -> &[Expr] {
        &self.outputs
    }

    /// Evaluate all outputs for the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.inputs()`.
    #[must_use]
    pub fn evaluate(&self, inputs: &[i64]) -> Vec<i64> {
        assert_eq!(inputs.len(), self.inputs, "behaviour input arity mismatch");
        self.outputs.iter().map(|e| e.evaluate(inputs)).collect()
    }

    /// Total operator count across all outputs (software cost proxy).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.outputs.iter().map(Expr::op_count).sum()
    }

    /// Visit every operator of every output expression.
    pub fn for_each_op(&self, mut f: impl FnMut(Op)) {
        for e in &self.outputs {
            e.for_each_op(&mut f);
        }
    }
}

fn validate_arity(e: &Expr) -> Result<(), IrError> {
    if let Expr::Apply(op, args) = e {
        if args.len() != op.arity() {
            // Reuse BadExprInput-style reporting through a dedicated variant
            // would be nicer; arity mismatches can only be produced through
            // `Expr::Apply` construction by hand, so fold them into the
            // closest existing variant.
            return Err(IrError::BadExprInput {
                index: args.len(),
                arity: op.arity(),
            });
        }
        for a in args {
            validate_arity(a)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_arity_matches_apply() {
        for &op in Op::all() {
            let args = vec![1i64; op.arity()];
            // Must not panic.
            let _ = op.apply(&args);
        }
    }

    #[test]
    fn div_and_rem_by_zero_yield_zero() {
        assert_eq!(Op::Div.apply(&[5, 0]), 0);
        assert_eq!(Op::Rem.apply(&[5, 0]), 0);
    }

    #[test]
    fn comparisons_produce_zero_one() {
        assert_eq!(Op::Lt.apply(&[1, 2]), 1);
        assert_eq!(Op::Lt.apply(&[2, 1]), 0);
        assert_eq!(Op::Le.apply(&[2, 2]), 1);
        assert_eq!(Op::Eq.apply(&[3, 4]), 0);
    }

    #[test]
    fn mux_selects_on_nonzero() {
        assert_eq!(Op::Mux.apply(&[1, 10, 20]), 10);
        assert_eq!(Op::Mux.apply(&[0, 10, 20]), 20);
        assert_eq!(Op::Mux.apply(&[-3, 10, 20]), 10);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(Op::Shl.apply(&[1, 64]), 1); // 64 & 63 == 0
        assert_eq!(Op::Shr.apply(&[-8, 1]), -4); // arithmetic
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(Op::Add.apply(&[i64::MAX, 1]), i64::MIN);
        assert_eq!(Op::Neg.apply(&[i64::MIN]), i64::MIN);
        assert_eq!(Op::Abs.apply(&[i64::MIN]), i64::MIN);
    }

    #[test]
    fn behavior_rejects_bad_input_index() {
        let e = Expr::binary(Op::Add, Expr::Input(0), Expr::Input(5));
        let err = Behavior::new(2, vec![e]).unwrap_err();
        assert_eq!(err, IrError::BadExprInput { index: 5, arity: 2 });
    }

    #[test]
    fn behavior_rejects_no_outputs() {
        assert_eq!(Behavior::new(2, vec![]).unwrap_err(), IrError::NoOutputs);
    }

    #[test]
    fn behavior_rejects_arity_mismatch() {
        let bad = Expr::Apply(Op::Add, vec![Expr::Input(0)]);
        assert!(Behavior::new(1, vec![bad]).is_err());
    }

    #[test]
    fn mac_evaluates() {
        let b = Behavior::mac();
        assert_eq!(b.evaluate(&[3, 4, 5]), vec![17]);
        assert_eq!(b.op_count(), 2);
    }

    #[test]
    fn identity_and_constant() {
        assert_eq!(Behavior::identity().evaluate(&[7]), vec![7]);
        assert_eq!(Behavior::constant(9).evaluate(&[]), vec![9]);
    }

    #[test]
    fn expr_metrics() {
        let e = Expr::binary(
            Op::Add,
            Expr::binary(Op::Mul, Expr::Input(0), Expr::Const(3)),
            Expr::Input(1),
        );
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.depth(), 2);
        assert_eq!(e.max_input(), Some(1));
        assert_eq!(e.to_string(), "(add (mul in0 3) in1)");
    }

    #[test]
    fn for_each_op_visits_all() {
        let b = Behavior::mac();
        let mut seen = Vec::new();
        b.for_each_op(|op| seen.push(op));
        assert_eq!(seen, vec![Op::Add, Op::Mul]);
    }

    #[test]
    fn commutativity_table() {
        assert!(Op::Add.is_commutative());
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Shl.is_commutative());
    }
}
