//! Stable structural hashing for flow-engine cache keys.
//!
//! [`ContentHasher`] is a 128-bit FNV-1a hasher over an explicit byte
//! encoding; unlike `std::hash`, the digest carries no per-process
//! randomness, so equal values hash equally across runs, threads and
//! processes. [`ContentHash`] is the structural-equality companion: two
//! values with equal observable content produce equal digests.
//!
//! The flow engine's stage cache (`cool_core::cache`) keys every stage on
//! these digests; the paper's sweep benchmarks share one cache across
//! candidates and across parallel workers, so the digest must be a pure
//! function of content. Keep encodings *injective per type*: every impl
//! prefixes variable-length collections with their length and tags enum
//! variants with a fixed byte, so distinct values cannot collide by
//! concatenation.

use crate::behavior::{Behavior, Expr, Op};
use crate::graph::{Edge, NodeId, NodeKind, PartitioningGraph};
use crate::mapping::{Mapping, Resource};
use crate::target::{Bus, HwResource, Memory, Processor, Target, TimingClass};

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A deterministic, process-independent 128-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentHasher {
    state: u128,
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> ContentHasher {
        ContentHasher {
            state: OFFSET_BASIS,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorb a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u128` (little-endian) — used to fold one digest into
    /// another when chaining stage keys.
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `i64` (two's complement, little-endian).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize`, widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorb an `f64` via its IEEE-754 bit pattern. `NaN` payloads are
    /// preserved; `0.0` and `-0.0` hash differently — acceptable for
    /// option/clock knobs, which are never computed.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Deterministic structural hashing into a [`ContentHasher`].
///
/// Implementations must depend only on observable content (never on
/// addresses, capacities of backing buffers, or `std::hash` output) and
/// must keep the encoding injective for the type: equal content ⇒ equal
/// digest, and — for cache-key soundness — distinct content should differ
/// with overwhelming (128-bit) probability.
pub trait ContentHash {
    /// Absorb this value's content into `h`.
    fn content_hash(&self, h: &mut ContentHasher);
}

/// One-shot digest of a value.
#[must_use]
pub fn digest<T: ContentHash + ?Sized>(value: &T) -> u128 {
    let mut h = ContentHasher::new();
    value.content_hash(&mut h);
    h.finish()
}

impl ContentHash for u8 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(*self);
    }
}

impl ContentHash for u16 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u16(*self);
    }
}

impl ContentHash for u32 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u32(*self);
    }
}

impl ContentHash for u64 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u64(*self);
    }
}

impl ContentHash for usize {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(*self);
    }
}

impl ContentHash for i64 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_i64(*self);
    }
}

impl ContentHash for bool {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_bool(*self);
    }
}

impl ContentHash for f64 {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_f64(*self);
    }
}

impl ContentHash for str {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(self);
    }
}

impl ContentHash for String {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(self);
    }
}

impl<T: ContentHash> ContentHash for [T] {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.len());
        for item in self {
            item.content_hash(h);
        }
    }
}

impl<T: ContentHash> ContentHash for Vec<T> {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.as_slice().content_hash(h);
    }
}

impl<T: ContentHash> ContentHash for Option<T> {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.content_hash(h);
            }
        }
    }
}

impl<A: ContentHash, B: ContentHash> ContentHash for (A, B) {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.0.content_hash(h);
        self.1.content_hash(h);
    }
}

impl<A: ContentHash, B: ContentHash, C: ContentHash> ContentHash for (A, B, C) {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.0.content_hash(h);
        self.1.content_hash(h);
        self.2.content_hash(h);
    }
}

impl ContentHash for Op {
    fn content_hash(&self, h: &mut ContentHasher) {
        // The mnemonic is documented as stable across releases.
        h.write(self.mnemonic().as_bytes());
        h.write_u8(b';');
    }
}

impl ContentHash for Expr {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            Expr::Input(i) => {
                h.write_u8(0);
                h.write_usize(*i);
            }
            Expr::Const(c) => {
                h.write_u8(1);
                h.write_i64(*c);
            }
            Expr::Apply(op, args) => {
                h.write_u8(2);
                op.content_hash(h);
                args.content_hash(h);
            }
        }
    }
}

impl ContentHash for Behavior {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.inputs());
        self.output_exprs().content_hash(h);
    }
}

impl ContentHash for NodeKind {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            NodeKind::Input => 0,
            NodeKind::Output => 1,
            NodeKind::Function => 2,
        });
    }
}

impl ContentHash for NodeId {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.index());
    }
}

impl ContentHash for crate::graph::EdgeId {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.index());
    }
}

impl ContentHash for Edge {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.src.content_hash(h);
        h.write_u16(self.src_port);
        self.dst.content_hash(h);
        h.write_u16(self.dst_port);
        h.write_u16(self.bits);
    }
}

impl ContentHash for PartitioningGraph {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(self.name());
        h.write_usize(self.node_count());
        for (_, n) in self.nodes() {
            h.write_str(n.name());
            n.kind().content_hash(h);
            n.behavior().content_hash(h);
        }
        h.write_usize(self.edge_count());
        for (_, e) in self.edges() {
            e.content_hash(h);
        }
    }
}

impl ContentHash for Resource {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            Resource::Software(i) => {
                h.write_u8(0);
                h.write_usize(*i);
            }
            Resource::Hardware(i) => {
                h.write_u8(1);
                h.write_usize(*i);
            }
        }
    }
}

impl ContentHash for Mapping {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.len());
        for (_, r) in self.iter() {
            r.content_hash(h);
        }
    }
}

impl ContentHash for TimingClass {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            TimingClass::Dsp56001 => 0,
            TimingClass::GenericRisc => 1,
            TimingClass::Microcontroller => 2,
        });
    }
}

impl ContentHash for Processor {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_f64(self.clock_mhz);
        self.timing.content_hash(h);
    }
}

impl ContentHash for HwResource {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_f64(self.clock_mhz);
        h.write_u32(self.clb_capacity);
    }
}

impl ContentHash for Memory {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_u32(self.size_bytes);
        h.write_u32(self.base_address);
        h.write_u8(self.read_wait);
        h.write_u8(self.write_wait);
    }
}

impl ContentHash for Bus {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_u16(self.width_bits);
        h.write_u8(self.cycles_per_word);
    }
}

impl ContentHash for Target {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.processors.content_hash(h);
        self.hw.content_hash(h);
        self.memory.content_hash(h);
        self.bus.content_hash(h);
        h.write_f64(self.system_clock_mhz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;

    fn sample_graph(name: &str) -> PartitioningGraph {
        let mut g = PartitioningGraph::new(name);
        let a = g.add_input("a", 16);
        let f = g.add_function("f", Behavior::binary(Op::Add)).unwrap();
        let y = g.add_output("y", 16);
        g.connect(a, 0, f, 0, 16).unwrap();
        g.connect(a, 0, f, 1, 16).unwrap();
        g.connect(f, 0, y, 0, 16).unwrap();
        g
    }

    #[test]
    fn empty_digest_is_fnv_offset_basis() {
        // Pins the hasher to the published FNV-1a 128 parameters: no
        // process randomness, no accidental algorithm change.
        assert_eq!(ContentHasher::new().finish(), OFFSET_BASIS);
    }

    #[test]
    fn known_fnv1a_byte_vector() {
        // FNV-1a("a"): basis ^ 0x61 then * prime.
        let mut h = ContentHasher::new();
        h.write(b"a");
        let expected = (OFFSET_BASIS ^ 0x61).wrapping_mul(PRIME);
        assert_eq!(h.finish(), expected);
    }

    #[test]
    fn equal_content_hashes_equal() {
        assert_eq!(digest(&sample_graph("g")), digest(&sample_graph("g")));
        let t = Target::fuzzy_board();
        assert_eq!(digest(&t), digest(&t.clone()));
    }

    #[test]
    fn structural_differences_change_digest() {
        let base = digest(&sample_graph("g"));
        assert_ne!(base, digest(&sample_graph("h")), "name must matter");
        let mut wider = sample_graph("g");
        let extra = wider.add_output("z", 16);
        let f = wider.node_by_name("f").unwrap();
        wider.connect(f, 0, extra, 0, 16).unwrap();
        assert_ne!(base, digest(&wider), "extra node/edge must matter");
    }

    #[test]
    fn length_prefix_defeats_concatenation_collisions() {
        let mut a = ContentHasher::new();
        "ab".content_hash(&mut a);
        "c".content_hash(&mut a);
        let mut b = ContentHasher::new();
        "a".content_hash(&mut b);
        "bc".content_hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mapping_and_resource_hash_position_sensitively() {
        let m1 = Mapping::from_vec(vec![Resource::Software(0), Resource::Hardware(0)]);
        let m2 = Mapping::from_vec(vec![Resource::Hardware(0), Resource::Software(0)]);
        assert_ne!(digest(&m1), digest(&m2));
        assert_ne!(
            digest(&Resource::Software(1)),
            digest(&Resource::Hardware(1))
        );
    }

    #[test]
    fn target_budget_changes_digest() {
        let base = Target::fuzzy_board();
        let mut cut = base.clone();
        cut.hw[0].clb_capacity = 48;
        assert_ne!(digest(&base), digest(&cut));
    }
}
