//! Shared helpers for the flow's scoped-thread fan-out points.

/// Resolve a `jobs` knob: `0` means "all available cores", and there is
/// no point spawning more workers than work items. Always returns at
/// least 1.
#[must_use]
pub fn effective_jobs(jobs: usize, work_items: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };
    jobs.min(work_items.max(1))
}

/// Map `f` over `items` on up to `jobs` scoped worker threads (`0` =
/// all cores), preserving input order in the result.
///
/// Work is handed out through an atomic index, so unevenly sized items
/// still balance across workers. The output is identical to
/// `items.iter().map(f).collect()` for every `jobs` value — this is the
/// one fan-out primitive behind every parallel point of the flow
/// (per-node HLS, STG-refinement rounds, encoding streams, placement
/// chains), so determinism fixes land in exactly one place. A worker
/// panic propagates when the scope joins.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> = (0..items.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{effective_jobs, par_map};

    #[test]
    fn clamps_to_work_and_floor() {
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(1, 100), 1);
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(3, 0), 1);
        assert_eq!(effective_jobs(16, 16), 16);
    }

    #[test]
    fn par_map_preserves_order_for_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        let serial = par_map(&items, 1, |&x| x * x);
        assert_eq!(serial, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        for jobs in [2usize, 5, 64, 0] {
            assert_eq!(par_map(&items, jobs, |&x| x * x), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }
}
