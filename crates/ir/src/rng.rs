//! A small deterministic pseudo-random number generator.
//!
//! The reproduction needs seeded randomness in a few places — the
//! genetic partitioner, random workload DAGs, the annealing placer —
//! and must stay dependency-free, so this module provides a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-seeded
//! xoshiro256**-style generator with the handful of sampling methods the
//! code base uses. It is *not* cryptographically secure and makes no
//! cross-version stability promise beyond "deterministic for one build".

use std::ops::Range;

/// Deterministic PRNG (drop-in for the subset of `rand::rngs::StdRng` the
/// repository previously used).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `range` (half-open). Uses Lemire-style
    /// multiply-shift rejection for negligible bias.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
