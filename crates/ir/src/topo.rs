//! Topological utilities over the partitioning graph.

use crate::error::IrError;
use crate::graph::{NodeId, PartitioningGraph};

/// Topologically order the graph's nodes (Kahn's algorithm).
///
/// Ties are broken by node id, so the order is deterministic for a given
/// graph, which keeps schedules, STGs and generated code reproducible.
///
/// # Errors
///
/// Returns [`IrError::Cycle`] if the graph is not a DAG; the witness is a
/// node with a non-zero residual in-degree.
pub fn topo_order(g: &PartitioningGraph) -> Result<Vec<NodeId>, IrError> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for (_, e) in g.edges() {
        indeg[e.dst.index()] += 1;
    }
    // A sorted ready "set" realised as a Vec we keep sorted: graph sizes in
    // this domain are tiny (tens to low hundreds of nodes).
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.first() {
        ready.remove(0);
        let id = NodeId::from_index(i);
        order.push(id);
        // Decrement once per *edge*: parallel edges into the same successor
        // (fan-out to several ports of one node) each contribute in-degree.
        for (_, e) in g.edges() {
            if e.src != id {
                continue;
            }
            let d = &mut indeg[e.dst.index()];
            *d -= 1;
            if *d == 0 {
                let pos = ready.binary_search(&e.dst.index()).unwrap_or_else(|p| p);
                ready.insert(pos, e.dst.index());
            }
        }
    }
    if order.len() != n {
        let witness = (0..n)
            .find(|&i| indeg[i] > 0)
            .map(NodeId::from_index)
            .expect("cycle implies a node with residual in-degree");
        return Err(IrError::Cycle { witness });
    }
    Ok(order)
}

/// Length (in nodes) of the longest path through the DAG, with every node
/// weighted by `weight`. Useful for critical-path style bounds.
///
/// # Errors
///
/// Returns [`IrError::Cycle`] if the graph is not a DAG.
pub fn longest_path(
    g: &PartitioningGraph,
    mut weight: impl FnMut(NodeId) -> u64,
) -> Result<u64, IrError> {
    let order = topo_order(g)?;
    let mut dist = vec![0u64; g.node_count()];
    let mut best = 0;
    for id in order {
        let w = weight(id);
        let start = g
            .predecessors(id)
            .into_iter()
            .map(|p| dist[p.index()])
            .max()
            .unwrap_or(0);
        dist[id.index()] = start + w;
        best = best.max(dist[id.index()]);
    }
    Ok(best)
}

/// Per-node depth: the number of edges on the longest path from any source
/// node to the node. Sources have depth 0.
///
/// # Errors
///
/// Returns [`IrError::Cycle`] if the graph is not a DAG.
pub fn depths(g: &PartitioningGraph) -> Result<Vec<usize>, IrError> {
    let order = topo_order(g)?;
    let mut depth = vec![0usize; g.node_count()];
    for id in order {
        for s in g.successors(id) {
            depth[s.index()] = depth[s.index()].max(depth[id.index()] + 1);
        }
    }
    Ok(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, Op};

    fn chain(n: usize) -> PartitioningGraph {
        let mut g = PartitioningGraph::new("chain");
        let mut prev = g.add_input("in", 16);
        for i in 0..n {
            let f = g
                .add_function(format!("f{i}"), Behavior::unary(Op::Neg))
                .unwrap();
            g.connect(prev, 0, f, 0, 16).unwrap();
            prev = f;
        }
        let y = g.add_output("out", 16);
        g.connect(prev, 0, y, 0, 16).unwrap();
        g
    }

    #[test]
    fn chain_orders_in_sequence() {
        let g = chain(5);
        let order = topo_order(&g).unwrap();
        assert_eq!(order.len(), g.node_count());
        // Every edge must go forward in the order.
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.node_count()];
            for (i, id) in order.iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for (_, e) in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn longest_path_counts_nodes() {
        let g = chain(4);
        // input + 4 functions + output, each weight 1.
        assert_eq!(longest_path(&g, |_| 1).unwrap(), 6);
    }

    #[test]
    fn depths_increase_along_chain() {
        let g = chain(3);
        let d = depths(&g).unwrap();
        let out = g.node_by_name("out").unwrap();
        assert_eq!(d[out.index()], 4);
    }

    #[test]
    fn order_is_deterministic() {
        let g = chain(6);
        assert_eq!(topo_order(&g).unwrap(), topo_order(&g).unwrap());
    }
}
