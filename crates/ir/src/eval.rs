//! Reference evaluator: executes a partitioning graph functionally.
//!
//! This is the ground truth that every synthesized implementation —
//! regardless of how its nodes were partitioned onto processors and ASICs —
//! must reproduce. The co-simulator's functional-equivalence checks and the
//! integration tests compare against it.

use std::collections::BTreeMap;

use crate::error::IrError;
use crate::graph::{NodeKind, PartitioningGraph};
use crate::topo;

/// Evaluate the graph for one system invocation.
///
/// `inputs` maps primary-input names to values. The result maps primary-
/// output names to the computed values.
///
/// # Errors
///
/// Returns [`IrError::MissingInput`] if a primary input is not supplied,
/// [`IrError::Cycle`] / wiring errors if the graph is malformed (call
/// [`PartitioningGraph::validate`] first to get precise diagnostics).
pub fn evaluate(
    g: &PartitioningGraph,
    inputs: &BTreeMap<String, i64>,
) -> Result<BTreeMap<String, i64>, IrError> {
    let order = topo::topo_order(g)?;
    // Per-node output values, indexed [node][out_port].
    let mut values: Vec<Vec<i64>> = vec![Vec::new(); g.node_count()];
    for id in order {
        let node = g.node(id)?;
        match node.kind() {
            NodeKind::Input => {
                let v = *inputs
                    .get(node.name())
                    .ok_or_else(|| IrError::MissingInput(node.name().to_string()))?;
                values[id.index()] = vec![v];
            }
            NodeKind::Output | NodeKind::Function => {
                let arity = match node.kind() {
                    NodeKind::Output => 1,
                    _ => node.behavior().inputs(),
                };
                let mut ins = vec![0i64; arity];
                for (_, e) in g.in_edges(id) {
                    ins[e.dst_port as usize] = values[e.src.index()][e.src_port as usize];
                }
                values[id.index()] = match node.kind() {
                    NodeKind::Output => ins,
                    _ => node.behavior().evaluate(&ins),
                };
            }
        }
    }
    let mut out = BTreeMap::new();
    for id in g.primary_outputs() {
        let node = g.node(id)?;
        out.insert(node.name().to_string(), values[id.index()][0]);
    }
    Ok(out)
}

/// Evaluate the graph over a stream of invocations (one input map each).
///
/// # Errors
///
/// Propagates the first error from [`evaluate`].
pub fn evaluate_stream(
    g: &PartitioningGraph,
    stream: &[BTreeMap<String, i64>],
) -> Result<Vec<BTreeMap<String, i64>>, IrError> {
    stream.iter().map(|m| evaluate(g, m)).collect()
}

/// Build an input map from `(name, value)` pairs — convenience for tests
/// and examples.
#[must_use]
pub fn input_map<'a>(pairs: impl IntoIterator<Item = (&'a str, i64)>) -> BTreeMap<String, i64> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, Expr, Op};

    fn mac_graph() -> PartitioningGraph {
        let mut g = PartitioningGraph::new("mac");
        let x = g.add_input("x", 16);
        let c = g.add_input("c", 16);
        let acc = g.add_input("acc", 32);
        let m = g.add_function("mac", Behavior::mac()).unwrap();
        let y = g.add_output("y", 32);
        g.connect(x, 0, m, 0, 16).unwrap();
        g.connect(c, 0, m, 1, 16).unwrap();
        g.connect(acc, 0, m, 2, 32).unwrap();
        g.connect(m, 0, y, 0, 32).unwrap();
        g
    }

    #[test]
    fn mac_evaluates() {
        let g = mac_graph();
        g.validate().unwrap();
        let out = evaluate(&g, &input_map([("x", 3), ("c", 7), ("acc", 10)])).unwrap();
        assert_eq!(out["y"], 31);
    }

    #[test]
    fn missing_input_reported() {
        let g = mac_graph();
        let err = evaluate(&g, &input_map([("x", 3)])).unwrap_err();
        assert!(matches!(err, IrError::MissingInput(_)));
    }

    #[test]
    fn multi_output_node() {
        // One node computing both sum and difference.
        let mut g = PartitioningGraph::new("sumdiff");
        let a = g.add_input("a", 16);
        let b = g.add_input("b", 16);
        let f = g
            .add_function(
                "sumdiff",
                Behavior::new(
                    2,
                    vec![
                        Expr::binary(Op::Add, Expr::Input(0), Expr::Input(1)),
                        Expr::binary(Op::Sub, Expr::Input(0), Expr::Input(1)),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let s = g.add_output("sum", 16);
        let d = g.add_output("diff", 16);
        g.connect(a, 0, f, 0, 16).unwrap();
        g.connect(b, 0, f, 1, 16).unwrap();
        g.connect(f, 0, s, 0, 16).unwrap();
        g.connect(f, 1, d, 0, 16).unwrap();
        g.validate().unwrap();
        let out = evaluate(&g, &input_map([("a", 10), ("b", 4)])).unwrap();
        assert_eq!(out["sum"], 14);
        assert_eq!(out["diff"], 6);
    }

    #[test]
    fn stream_evaluation() {
        let g = mac_graph();
        let stream = vec![
            input_map([("x", 1), ("c", 2), ("acc", 0)]),
            input_map([("x", 2), ("c", 2), ("acc", 2)]),
        ];
        let outs = evaluate_stream(&g, &stream).unwrap();
        assert_eq!(outs[0]["y"], 2);
        assert_eq!(outs[1]["y"], 6);
    }

    #[test]
    fn fanout_value_reused() {
        let mut g = PartitioningGraph::new("fanout");
        let a = g.add_input("a", 16);
        let sq = g.add_function("sq", Behavior::binary(Op::Mul)).unwrap();
        let y = g.add_output("y", 32);
        g.connect(a, 0, sq, 0, 16).unwrap();
        g.connect(a, 0, sq, 1, 16).unwrap();
        g.connect(sq, 0, y, 0, 32).unwrap();
        g.validate().unwrap();
        let out = evaluate(&g, &input_map([("a", 9)])).unwrap();
        assert_eq!(out["y"], 81);
    }
}
