//! The partitioning graph: the fundamental data structure of COOL.
//!
//! Nodes are functions of the system specification, edges are data
//! transfers between them (paper Figure 2). Primary inputs and outputs of
//! the system are modelled as dedicated node kinds so that the I/O
//! controller synthesis and the co-simulator can treat them uniformly.

use std::collections::BTreeMap;
use std::fmt;

use crate::behavior::Behavior;
use crate::error::IrError;

/// Identifier of a node inside one [`PartitioningGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of the node (0-based insertion order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a `NodeId` from a dense index.
    ///
    /// Only meaningful for indices obtained from [`NodeId::index`] on the
    /// same graph; mainly used by downstream crates that keep per-node
    /// side tables.
    #[must_use]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge inside one [`PartitioningGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The dense index of the edge (0-based insertion order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build an `EdgeId` from a dense index (see [`NodeId::from_index`]).
    #[must_use]
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(index as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Role of a node in the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input: receives one value per system invocation from the
    /// environment (handled by the synthesized I/O controller).
    Input,
    /// Primary output: delivers one value per invocation to the environment.
    Output,
    /// An internal function node, subject to hardware/software partitioning.
    Function,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeKind::Input => "input",
            NodeKind::Output => "output",
            NodeKind::Function => "function",
        })
    }
}

/// A node of the partitioning graph.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    kind: NodeKind,
    behavior: Behavior,
}

impl Node {
    /// The node's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's role.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The pure function the node computes.
    #[must_use]
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }
}

/// A directed data transfer between an output port and an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Output port on the producing node.
    pub src_port: u16,
    /// Consuming node.
    pub dst: NodeId,
    /// Input port on the consuming node.
    pub dst_port: u16,
    /// Width of the transferred value in bits (1..=64).
    pub bits: u16,
}

impl Edge {
    /// Number of bus words needed to transfer one value over a bus of
    /// `bus_bits` width.
    #[must_use]
    pub fn words(&self, bus_bits: u16) -> u32 {
        u32::from(self.bits.div_ceil(bus_bits.max(1)))
    }
}

/// The coloured partitioning graph of COOL (before colouring).
///
/// The graph is a DAG of named nodes connected port-to-port. Use
/// [`PartitioningGraph::validate`] after construction to check DAG-ness and
/// port wiring; all downstream stages assume a validated graph.
#[derive(Debug, Clone)]
pub struct PartitioningGraph {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_name: BTreeMap<String, NodeId>,
}

impl PartitioningGraph {
    /// Create an empty graph with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> PartitioningGraph {
        PartitioningGraph {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            by_name: BTreeMap::new(),
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        behavior: Behavior,
    ) -> Result<NodeId, IrError> {
        if self.by_name.contains_key(&name) {
            return Err(IrError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            behavior,
        });
        Ok(id)
    }

    /// Add a primary input of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same name already exists (inputs are
    /// normally added first; use [`PartitioningGraph::add_function`] and
    /// handle the error for dynamic construction).
    pub fn add_input(&mut self, name: impl Into<String>, _bits: u16) -> NodeId {
        self.add_node(name.into(), NodeKind::Input, Behavior::constant(0))
            .expect("duplicate primary input name")
    }

    /// Add a primary output of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics on duplicate name, like [`PartitioningGraph::add_input`].
    pub fn add_output(&mut self, name: impl Into<String>, _bits: u16) -> NodeId {
        self.add_node(name.into(), NodeKind::Output, Behavior::identity())
            .expect("duplicate primary output name")
    }

    /// Add an internal function node.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateName`] if the name is taken.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        behavior: Behavior,
    ) -> Result<NodeId, IrError> {
        self.add_node(name.into(), NodeKind::Function, behavior)
    }

    /// Connect `src`'s output port `src_port` to `dst`'s input port
    /// `dst_port`, transferring `bits`-wide values.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, a port index is out of
    /// range for the node's behaviour, the destination port is already
    /// driven, or the bit width is not in `1..=64`.
    pub fn connect(
        &mut self,
        src: NodeId,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        bits: u16,
    ) -> Result<EdgeId, IrError> {
        if bits == 0 || bits > 64 {
            return Err(IrError::BadBitWidth(bits));
        }
        let src_node = self.node(src)?;
        let src_arity = match src_node.kind {
            NodeKind::Input => 1,
            _ => src_node.behavior.outputs() as u16,
        };
        if src_port >= src_arity {
            return Err(IrError::PortOutOfRange {
                node: src,
                port: src_port,
                arity: src_arity,
                input: false,
            });
        }
        let dst_node = self.node(dst)?;
        let dst_arity = match dst_node.kind {
            NodeKind::Output => 1,
            NodeKind::Input => 0,
            NodeKind::Function => dst_node.behavior.inputs() as u16,
        };
        if dst_port >= dst_arity {
            return Err(IrError::PortOutOfRange {
                node: dst,
                port: dst_port,
                arity: dst_arity,
                input: true,
            });
        }
        if self
            .edges
            .iter()
            .any(|e| e.dst == dst && e.dst_port == dst_port)
        {
            return Err(IrError::InputDrivenTwice {
                node: dst,
                port: dst_port,
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            src,
            src_port,
            dst,
            dst_port,
            bits,
        });
        Ok(id)
    }

    /// Look up a node by id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] for stale ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, IrError> {
        self.nodes.get(id.index()).ok_or(IrError::UnknownNode(id))
    }

    /// Look up an edge by id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownEdge`] for stale ids.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge, IrError> {
        self.edges.get(id.index()).ok_or(IrError::UnknownEdge(id))
    }

    /// Look up a node id by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over `(id, node)` pairs in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate over `(id, edge)` pairs in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Ids of all primary inputs, in insertion order.
    #[must_use]
    pub fn primary_inputs(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind == NodeKind::Input)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all primary outputs, in insertion order.
    #[must_use]
    pub fn primary_outputs(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind == NodeKind::Output)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all internal function nodes, in insertion order.
    #[must_use]
    pub fn function_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind == NodeKind::Function)
            .map(|(id, _)| id)
            .collect()
    }

    /// Edges entering `node`, sorted by destination port.
    #[must_use]
    pub fn in_edges(&self, node: NodeId) -> Vec<(EdgeId, &Edge)> {
        let mut v: Vec<_> = self.edges().filter(|(_, e)| e.dst == node).collect();
        v.sort_by_key(|(_, e)| e.dst_port);
        v
    }

    /// Edges leaving `node`, sorted by source port.
    #[must_use]
    pub fn out_edges(&self, node: NodeId) -> Vec<(EdgeId, &Edge)> {
        let mut v: Vec<_> = self.edges().filter(|(_, e)| e.src == node).collect();
        v.sort_by_key(|(_, e)| e.src_port);
        v
    }

    /// Distinct predecessor nodes of `node`.
    #[must_use]
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|e| e.dst == node)
            .map(|e| e.src)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct successor nodes of `node`.
    #[must_use]
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|e| e.src == node)
            .map(|e| e.dst)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Validate the structural invariants assumed by all downstream stages:
    /// acyclicity, every input port driven exactly once, ports in range.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        // Every function input port and output-node port must be driven.
        for (id, n) in self.nodes() {
            let wanted = match n.kind {
                NodeKind::Input => 0,
                NodeKind::Output => 1,
                NodeKind::Function => n.behavior.inputs() as u16,
            };
            for port in 0..wanted {
                let drivers = self
                    .edges
                    .iter()
                    .filter(|e| e.dst == id && e.dst_port == port)
                    .count();
                match drivers {
                    0 => return Err(IrError::UndrivenInput { node: id, port }),
                    1 => {}
                    _ => return Err(IrError::InputDrivenTwice { node: id, port }),
                }
            }
        }
        // Acyclicity.
        crate::topo::topo_order(self)?;
        Ok(())
    }

    /// Render the graph in Graphviz DOT format. When `mapping` is given,
    /// nodes are coloured by resource (software = ellipse, hardware = box),
    /// mirroring the paper's coloured partitioning graph (Figure 2).
    #[must_use]
    pub fn to_dot(&self, mapping: Option<&crate::mapping::Mapping>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for (id, n) in self.nodes() {
            let shape = match n.kind() {
                NodeKind::Input | NodeKind::Output => "invtrapezium",
                NodeKind::Function => match mapping.map(|m| m.resource(id)) {
                    Some(r) if r.is_hardware() => "box",
                    _ => "ellipse",
                },
            };
            let label = match mapping.map(|m| m.resource(id)) {
                Some(r) if n.kind() == NodeKind::Function => {
                    format!("{}\\n[{r}]", n.name())
                }
                _ => n.name().to_string(),
            };
            let _ = writeln!(s, "  {id} [shape={shape}, label=\"{label}\"];");
        }
        for (_, e) in self.edges() {
            let _ = writeln!(s, "  {} -> {} [label=\"{}b\"];", e.src, e.dst, e.bits);
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Rough line-count of an equivalent textual specification, used by the
    /// case-study report (the paper quotes "about 900 lines" for the fuzzy
    /// controller). One line per node declaration plus one per connection,
    /// plus a fixed header/footer allowance, scaled by behaviour size.
    #[must_use]
    pub fn spec_line_estimate(&self) -> usize {
        let header = 12;
        let decls: usize = self.nodes.iter().map(|n| 1 + n.behavior.op_count()).sum();
        header + decls + self.edges.len()
    }
}

impl fmt::Display for PartitioningGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph `{}`: {} nodes, {} edges",
            self.name,
            self.nodes.len(),
            self.edges.len()
        )?;
        for (id, n) in self.nodes() {
            writeln!(f, "  {id} {} [{}]", n.name(), n.kind())?;
        }
        for (id, e) in self.edges() {
            writeln!(
                f,
                "  {id} {}:{} -> {}:{} ({} bits)",
                e.src, e.src_port, e.dst, e.dst_port, e.bits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Op;

    fn diamond() -> PartitioningGraph {
        let mut g = PartitioningGraph::new("diamond");
        let a = g.add_input("a", 16);
        let f1 = g.add_function("f1", Behavior::unary(Op::Neg)).unwrap();
        let f2 = g.add_function("f2", Behavior::unary(Op::Abs)).unwrap();
        let j = g.add_function("join", Behavior::binary(Op::Add)).unwrap();
        let y = g.add_output("y", 16);
        g.connect(a, 0, f1, 0, 16).unwrap();
        g.connect(a, 0, f2, 0, 16).unwrap();
        g.connect(f1, 0, j, 0, 16).unwrap();
        g.connect(f2, 0, j, 1, 16).unwrap();
        g.connect(j, 0, y, 0, 16).unwrap();
        g
    }

    #[test]
    fn diamond_validates() {
        diamond().validate().unwrap();
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut g = PartitioningGraph::new("g");
        g.add_function("x", Behavior::constant(1)).unwrap();
        assert!(matches!(
            g.add_function("x", Behavior::constant(2)),
            Err(IrError::DuplicateName(_))
        ));
    }

    #[test]
    fn double_drive_rejected() {
        let mut g = PartitioningGraph::new("g");
        let a = g.add_input("a", 8);
        let b = g.add_input("b", 8);
        let f = g.add_function("f", Behavior::unary(Op::Neg)).unwrap();
        g.connect(a, 0, f, 0, 8).unwrap();
        assert!(matches!(
            g.connect(b, 0, f, 0, 8),
            Err(IrError::InputDrivenTwice { .. })
        ));
    }

    #[test]
    fn port_range_checked() {
        let mut g = PartitioningGraph::new("g");
        let a = g.add_input("a", 8);
        let f = g.add_function("f", Behavior::unary(Op::Neg)).unwrap();
        assert!(matches!(
            g.connect(a, 1, f, 0, 8),
            Err(IrError::PortOutOfRange { input: false, .. })
        ));
        assert!(matches!(
            g.connect(a, 0, f, 3, 8),
            Err(IrError::PortOutOfRange { input: true, .. })
        ));
    }

    #[test]
    fn bad_bit_width_rejected() {
        let mut g = PartitioningGraph::new("g");
        let a = g.add_input("a", 8);
        let f = g.add_function("f", Behavior::unary(Op::Neg)).unwrap();
        assert_eq!(
            g.connect(a, 0, f, 0, 0).unwrap_err(),
            IrError::BadBitWidth(0)
        );
        assert_eq!(
            g.connect(a, 0, f, 0, 65).unwrap_err(),
            IrError::BadBitWidth(65)
        );
    }

    #[test]
    fn undriven_input_detected() {
        let mut g = PartitioningGraph::new("g");
        let _a = g.add_input("a", 8);
        let _f = g.add_function("f", Behavior::unary(Op::Neg)).unwrap();
        assert!(matches!(g.validate(), Err(IrError::UndrivenInput { .. })));
    }

    #[test]
    fn neighbours() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let j = g.node_by_name("join").unwrap();
        assert_eq!(g.successors(a).len(), 2);
        assert_eq!(g.predecessors(j).len(), 2);
        assert_eq!(g.in_edges(j).len(), 2);
        assert_eq!(g.out_edges(a).len(), 2);
    }

    #[test]
    fn kind_partitions() {
        let g = diamond();
        assert_eq!(g.primary_inputs().len(), 1);
        assert_eq!(g.primary_outputs().len(), 1);
        assert_eq!(g.function_nodes().len(), 3);
    }

    #[test]
    fn words_rounds_up() {
        let e = Edge {
            src: NodeId(0),
            src_port: 0,
            dst: NodeId(1),
            dst_port: 0,
            bits: 24,
        };
        assert_eq!(e.words(16), 2);
        assert_eq!(e.words(24), 1);
        assert_eq!(e.words(8), 3);
    }

    #[test]
    fn display_lists_everything() {
        let g = diamond();
        let s = g.to_string();
        assert!(s.contains("5 nodes"));
        assert!(s.contains("join"));
        assert!(s.contains("16 bits"));
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let g = diamond();
        let dot = g.to_dot(None);
        assert!(dot.starts_with("digraph"));
        for (_, n) in g.nodes() {
            assert!(dot.contains(n.name()), "missing {}", n.name());
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }

    #[test]
    fn dot_export_colours_by_mapping() {
        use crate::mapping::{Mapping, Resource};
        let g = diamond();
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        m.assign(g.node_by_name("join").unwrap(), Resource::Hardware(0));
        let dot = g.to_dot(Some(&m));
        assert!(dot.contains("shape=box"), "hardware nodes must be boxes");
        assert!(dot.contains("[hw0]"));
    }

    #[test]
    fn spec_line_estimate_grows_with_graph() {
        let g = diamond();
        assert!(g.spec_line_estimate() > g.node_count());
    }
}
