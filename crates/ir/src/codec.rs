//! A serde-free binary codec for flow artifacts.
//!
//! The persistent stage cache (`cool_core::disk`) serializes every
//! artifact a stage deposits into the `FlowContext` so that a later
//! process can restore it byte-identically. The encoding is a plain
//! little-endian byte stream with length-prefixed collections and
//! tag-byte enums — deliberately boring, std-only (the build container
//! has no registry access, so serde is unavailable), and *canonical*:
//! equal values encode to equal bytes, and `encode(decode(encode(x)))
//! == encode(x)` (the codec property tests in `cool_core` enforce the
//! fixpoint for every artifact type).
//!
//! Decoding is total over arbitrary byte strings: malformed input —
//! truncation, bad enum tags, trailing garbage — yields a
//! [`CodecError`], never a panic and never an abort. Length prefixes
//! are bounds-checked against the remaining input before any
//! allocation, so a bit-flipped length cannot OOM the process. The
//! disk cache leans on this to treat corrupted entries as misses.
//!
//! [`Codec`] is implemented here for primitives, collections and the
//! `cool_ir` types; every artifact crate implements it for its own
//! types (they own the private fields).

use std::fmt;
use std::io;
use std::time::Duration;

use crate::graph::{EdgeId, NodeId};
use crate::hash::ContentHasher;
use crate::mapping::{Mapping, Resource};
use crate::target::{Bus, HwResource, Memory, Processor, Target, TimingClass};

/// Decoding failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum tag byte matched no variant.
    InvalidTag {
        /// The type being decoded.
        type_name: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeds what the remaining input could hold.
    LengthOverflow {
        /// The decoded length.
        len: u64,
    },
    /// [`from_bytes`] decoded a complete value with input left over.
    TrailingBytes {
        /// Bytes left after the value.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "input truncated: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} for {type_name}")
            }
            CodecError::InvalidUtf8 => f.write_str("string is not valid UTF-8"),
            CodecError::LengthOverflow { len } => {
                write!(f, "length prefix {len} exceeds remaining input")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink for encoding.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes (no length prefix — pair with a fixed size or an
    /// explicit prefix on the caller's side).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Append a `u128`, little-endian (content digests, checksums).
    pub fn put_u128(&mut self, v: u128) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Append an `i64`, two's complement little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Append a `usize`, widened to `u64` so 32- and 64-bit hosts agree.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an `f64` via its IEEE-754 bit pattern (bit-exact roundtrip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }

    /// Encode a [`Codec`] value into this stream.
    pub fn put<T: Codec>(&mut self, v: &T) {
        v.encode(self);
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Take `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Take one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Take a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take_bytes(2)?.try_into().expect("2"),
        ))
    }

    /// Take a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take_bytes(4)?.try_into().expect("4"),
        ))
    }

    /// Take a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("8"),
        ))
    }

    /// Take a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(
            self.take_bytes(16)?.try_into().expect("16"),
        ))
    }

    /// Take a two's-complement little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("8"),
        ))
    }

    /// Take a `usize` (encoded as `u64`).
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short;
    /// [`CodecError::LengthOverflow`] if the value exceeds `usize`.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CodecError::LengthOverflow { len: v })
    }

    /// Take a collection length and bounds-check it against the remaining
    /// input, assuming each element occupies at least `min_elem_bytes`.
    /// This is what keeps a bit-flipped length prefix from triggering a
    /// huge allocation: the length must be plausible *before* any
    /// `Vec::with_capacity`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] or [`CodecError::LengthOverflow`].
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.take_usize()?;
        let need = len.checked_mul(min_elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(len),
            _ => Err(CodecError::LengthOverflow { len: len as u64 }),
        }
    }

    /// Take a `bool`. Exactly 0 or 1; anything else is a bad tag, which
    /// keeps the encoding canonical.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] or [`CodecError::InvalidTag`].
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag {
                type_name: "bool",
                tag,
            }),
        }
    }

    /// Take an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is short.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Take a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`], [`CodecError::LengthOverflow`] or
    /// [`CodecError::InvalidUtf8`].
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let len = self.take_len(1)?;
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Decode a [`Codec`] value from this stream.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] the value's decoder reports.
    pub fn take<T: Codec>(&mut self) -> Result<T, CodecError> {
        T::decode(self)
    }
}

/// Canonical binary encoding of a value.
///
/// Contract: `decode(encode(x)) == x` for every value, and the encoding
/// is canonical — `encode(decode(bytes))` reproduces `bytes` for every
/// `bytes` that decodes successfully. Implementations must consume
/// exactly the bytes they wrote and must not read global state.
///
/// Encodings are persisted: the flow engine's disk cache stores them in
/// `.cool-cache/` entries. Changing any impl's byte layout therefore
/// requires bumping the cache's on-disk format version
/// (`cool_core::disk::FORMAT_VERSION`), or stale entries from earlier
/// builds may decode into wrong values.
pub trait Codec: Sized {
    /// Append this value's encoding to `e`.
    fn encode(&self, e: &mut Encoder);

    /// Decode one value from the front of `d`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed input; never panics.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

/// Encode `value` into a fresh byte vector.
#[must_use]
pub fn to_bytes<T: Codec>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.encode(&mut e);
    e.into_bytes()
}

/// Decode exactly one `T` from `bytes`, rejecting trailing input.
///
/// # Errors
///
/// Any [`CodecError`], including [`CodecError::TrailingBytes`] when the
/// value ends before the input does.
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut d = Decoder::new(bytes);
    let value = T::decode(&mut d)?;
    if d.remaining() != 0 {
        return Err(CodecError::TrailingBytes {
            remaining: d.remaining(),
        });
    }
    Ok(value)
}

macro_rules! codec_prim {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Codec for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.$put(*self);
            }

            fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
                d.$take()
            }
        }
    };
}

codec_prim!(u8, put_u8, take_u8);
codec_prim!(u16, put_u16, take_u16);
codec_prim!(u32, put_u32, take_u32);
codec_prim!(u64, put_u64, take_u64);
codec_prim!(u128, put_u128, take_u128);
codec_prim!(i64, put_i64, take_i64);
codec_prim!(usize, put_usize, take_usize);
codec_prim!(bool, put_bool, take_bool);
codec_prim!(f64, put_f64, take_f64);

impl Codec for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.take_str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for item in self {
            item.encode(e);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Every element costs at least one byte, which bounds the
        // pre-allocation by the remaining input.
        let len = d.take_len(1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(d)?);
        }
        Ok(v)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "Option",
                tag,
            }),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl Codec for Duration {
    fn encode(&self, e: &mut Encoder) {
        e.put_u128(self.as_nanos());
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Total nanoseconds: the unique representation, so the encoding
        // stays canonical (no second (secs, nanos) spelling of the same
        // instant). Values past Duration's range are malformed input.
        let nanos = d.take_u128()?;
        let secs = nanos / 1_000_000_000;
        let Ok(secs) = u64::try_from(secs) else {
            return Err(CodecError::LengthOverflow { len: u64::MAX });
        };
        #[allow(clippy::cast_possible_truncation)] // remainder < 1e9
        Ok(Duration::new(secs, (nanos % 1_000_000_000) as u32))
    }
}

// ---------------------------------------------------------------------
// Wire framing: the envelope `cool serve` speaks over a local socket.

/// Frame magic, first bytes of every wire frame.
pub const FRAME_MAGIC: [u8; 8] = *b"COOLWIR\0";
/// Wire-frame format version. Bump on ANY change to the framed payload
/// encodings (the request/response `Codec` impls), exactly like the disk
/// cache's format version: a stale client must read as a bad frame, not
/// decode garbage.
pub const FRAME_VERSION: u32 = 3;
/// Upper bound on a frame's payload, checked *before* allocation so a
/// hostile or bit-flipped length prefix cannot OOM the server.
pub const MAX_FRAME_PAYLOAD: u64 = 64 * 1024 * 1024;
/// Fixed frame-header size: magic + version + payload length.
const FRAME_HEADER: usize = 8 + 4 + 8;
/// Trailing FNV-1a 128 payload checksum size.
const FRAME_CHECKSUM: usize = 16;

fn frame_checksum(payload: &[u8]) -> u128 {
    let mut h = ContentHasher::new();
    h.write(payload);
    h.finish()
}

fn bad_frame(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {why}"))
}

/// Write one framed payload: magic, version, length, payload, FNV-1a 128
/// checksum. The payload is typically [`to_bytes`] of a request or
/// response value.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: io::Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; FRAME_HEADER];
    head[..8].copy_from_slice(&FRAME_MAGIC);
    head[8..12].copy_from_slice(&FRAME_VERSION.to_le_bytes());
    head[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&frame_checksum(payload).to_le_bytes())?;
    w.flush()
}

/// Read one framed payload, validating magic, version, length bound and
/// checksum. Returns `Ok(None)` on a clean end-of-stream (the peer
/// closed before the first byte of a frame) so connection loops can tell
/// an orderly close from a truncated frame.
///
/// # Errors
///
/// I/O errors from the reader; [`io::ErrorKind::InvalidData`] for a
/// malformed frame (wrong magic or version, oversized length, checksum
/// mismatch); [`io::ErrorKind::UnexpectedEof`] for a frame cut short.
pub fn read_frame<R: io::Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; FRAME_HEADER];
    // Hand-rolled first read: `read_exact` cannot distinguish "peer
    // closed between frames" (fine) from "header cut short" (an error).
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(bad_frame("header cut short")),
            n => got += n,
        }
    }
    if head[..8] != FRAME_MAGIC {
        return Err(bad_frame("wrong magic"));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4"));
    if version != FRAME_VERSION {
        return Err(bad_frame("wrong version"));
    }
    let len = u64::from_le_bytes(head[12..20].try_into().expect("8"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(bad_frame("oversized payload"));
    }
    let len = usize::try_from(len).map_err(|_| bad_frame("oversized payload"))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; FRAME_CHECKSUM];
    r.read_exact(&mut sum)?;
    if u128::from_le_bytes(sum) != frame_checksum(&payload) {
        return Err(bad_frame("checksum mismatch"));
    }
    Ok(Some(payload))
}

impl Codec for NodeId {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.index());
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeId::from_index(d.take_usize()?))
    }
}

impl Codec for EdgeId {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.index());
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EdgeId::from_index(d.take_usize()?))
    }
}

impl Codec for Resource {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Resource::Software(i) => {
                e.put_u8(0);
                e.put_usize(*i);
            }
            Resource::Hardware(i) => {
                e.put_u8(1);
                e.put_usize(*i);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(Resource::Software(d.take_usize()?)),
            1 => Ok(Resource::Hardware(d.take_usize()?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "Resource",
                tag,
            }),
        }
    }
}

impl Codec for Mapping {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for (_, r) in self.iter() {
            r.encode(e);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.take_len(2)?;
        let mut assignment = Vec::with_capacity(len);
        for _ in 0..len {
            assignment.push(Resource::decode(d)?);
        }
        Ok(Mapping::from_vec(assignment))
    }
}

impl Codec for TimingClass {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            TimingClass::Dsp56001 => 0,
            TimingClass::GenericRisc => 1,
            TimingClass::Microcontroller => 2,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(TimingClass::Dsp56001),
            1 => Ok(TimingClass::GenericRisc),
            2 => Ok(TimingClass::Microcontroller),
            tag => Err(CodecError::InvalidTag {
                type_name: "TimingClass",
                tag,
            }),
        }
    }
}

impl Codec for Processor {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_f64(self.clock_mhz);
        self.timing.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Processor {
            name: d.take_str()?,
            clock_mhz: d.take_f64()?,
            timing: TimingClass::decode(d)?,
        })
    }
}

impl Codec for HwResource {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_f64(self.clock_mhz);
        e.put_u32(self.clb_capacity);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(HwResource {
            name: d.take_str()?,
            clock_mhz: d.take_f64()?,
            clb_capacity: d.take_u32()?,
        })
    }
}

impl Codec for Memory {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_u32(self.size_bytes);
        e.put_u32(self.base_address);
        e.put_u8(self.read_wait);
        e.put_u8(self.write_wait);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Memory {
            name: d.take_str()?,
            size_bytes: d.take_u32()?,
            base_address: d.take_u32()?,
            read_wait: d.take_u8()?,
            write_wait: d.take_u8()?,
        })
    }
}

impl Codec for Bus {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_u16(self.width_bits);
        e.put_u8(self.cycles_per_word);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Bus {
            name: d.take_str()?,
            width_bits: d.take_u16()?,
            cycles_per_word: d.take_u8()?,
        })
    }
}

impl Codec for Target {
    fn encode(&self, e: &mut Encoder) {
        self.processors.encode(e);
        self.hw.encode(e);
        self.memory.encode(e);
        self.bus.encode(e);
        e.put_f64(self.system_clock_mhz);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Target {
            processors: Vec::decode(d)?,
            hw: Vec::decode(d)?,
            memory: Memory::decode(d)?,
            bus: Bus::decode(d)?,
            system_clock_mhz: d.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value);
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, value);
        assert_eq!(to_bytes(&back), bytes, "encoding must be canonical");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u16::MAX);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&u128::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&-0.0f64);
        roundtrip(&String::from("héllo\0world"));
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Some(vec![(String::from("a"), 1u64)]));
        roundtrip(&Option::<u8>::None);
        roundtrip(&(1u8, 2u16, 3u32));
    }

    #[test]
    fn ir_types_roundtrip() {
        roundtrip(&NodeId::from_index(7));
        roundtrip(&EdgeId::from_index(9));
        roundtrip(&Resource::Hardware(1));
        roundtrip(&Mapping::from_vec(vec![
            Resource::Software(0),
            Resource::Hardware(1),
        ]));
        roundtrip(&Target::fuzzy_board());
        roundtrip(&Target::minimal());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = to_bytes(&Target::fuzzy_board());
        for cut in 0..bytes.len() {
            let r: Result<Target, CodecError> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&42u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            from_bytes::<Resource>(&[9, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(CodecError::InvalidTag {
                type_name: "Resource",
                ..
            })
        ));
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(CodecError::InvalidTag {
                type_name: "bool",
                ..
            })
        ));
    }

    #[test]
    fn huge_length_prefix_rejected_before_allocation() {
        // A vector claiming u64::MAX elements with a 9-byte body must be
        // rejected by the bounds check, not by the allocator.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.push(1);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn duration_roundtrips_and_stays_canonical() {
        roundtrip(&Duration::ZERO);
        roundtrip(&Duration::from_nanos(1));
        roundtrip(&Duration::new(3, 999_999_999));
        roundtrip(&Duration::MAX);
        // Nanos past Duration's range are malformed, not a panic.
        let mut e = Encoder::new();
        e.put_u128(u128::MAX);
        assert!(matches!(
            from_bytes::<Duration>(&e.into_bytes()),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn frames_roundtrip() {
        let payload = to_bytes(&Target::fuzzy_board());
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean close");
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();

        // Truncation at every cut: either a clean close (cut 0) or an
        // error, never a successful frame.
        for cut in 1..wire.len() {
            let err = read_frame(&mut &wire[..cut]).expect_err("truncated frame");
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "cut {cut}: {err}"
            );
        }

        // Wrong magic.
        let mut bad = wire.clone();
        bad[0] ^= 0x01;
        assert_eq!(
            read_frame(&mut bad.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Wrong version.
        let mut bad = wire.clone();
        bad[8] ^= 0x01;
        assert_eq!(
            read_frame(&mut bad.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // A flipped payload bit fails the checksum.
        let mut bad = wire.clone();
        bad[FRAME_HEADER + 2] ^= 0x40;
        assert_eq!(
            read_frame(&mut bad.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // A hostile length prefix is rejected before allocation.
        let mut bad = wire;
        bad[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut bad.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            CodecError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            CodecError::InvalidTag {
                type_name: "T",
                tag: 3,
            },
            CodecError::InvalidUtf8,
            CodecError::LengthOverflow { len: 10 },
            CodecError::TrailingBytes { remaining: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
