//! Target architecture description.
//!
//! The paper's target is a board with a Motorola DSP56001 on a PC plug-in
//! card, two Xilinx XC4005 FPGAs (196 CLBs each), a 64 kB static RAM card
//! and a bus card connecting everything. This module models exactly that
//! class of multi-processor / multi-ASIC architectures.

use std::fmt;

/// Instruction-timing flavour of a processor.
///
/// The co-simulator and software cost model do not emulate real opcodes;
/// they charge per-operation cycle counts from a table selected by this
/// class. The tables reproduce the *cost structure* of the real parts
/// (single-cycle MAC on the DSP, expensive division everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TimingClass {
    /// Motorola DSP56001 flavour: 1-cycle multiply/MAC, slow division.
    Dsp56001,
    /// A plain load/store RISC: uniform simple ops, multi-cycle multiply.
    GenericRisc,
    /// A slow microcontroller: everything is multi-cycle.
    Microcontroller,
}

impl TimingClass {
    /// Cycles charged for one application of `op` on this processor class.
    #[must_use]
    pub fn op_cycles(self, op: crate::behavior::Op) -> u64 {
        use crate::behavior::Op;
        match self {
            TimingClass::Dsp56001 => match op {
                Op::Mul => 1, // the 56001's hallmark single-cycle multiplier
                Op::Div | Op::Rem => 20,
                Op::Mux | Op::Lt | Op::Le | Op::Eq => 2,
                _ => 1,
            },
            TimingClass::GenericRisc => match op {
                Op::Mul => 4,
                Op::Div | Op::Rem => 32,
                Op::Mux | Op::Lt | Op::Le | Op::Eq => 2,
                _ => 1,
            },
            TimingClass::Microcontroller => match op {
                Op::Mul => 12,
                Op::Div | Op::Rem => 60,
                _ => 4,
            },
        }
    }

    /// Fixed per-node software overhead in cycles (call/loop framing).
    #[must_use]
    pub fn node_overhead_cycles(self) -> u64 {
        match self {
            TimingClass::Dsp56001 => 6,
            TimingClass::GenericRisc => 8,
            TimingClass::Microcontroller => 16,
        }
    }

    /// Cycles for one memory-mapped word access (excluding memory waits).
    #[must_use]
    pub fn io_access_cycles(self) -> u64 {
        match self {
            TimingClass::Dsp56001 => 2,
            TimingClass::GenericRisc => 2,
            TimingClass::Microcontroller => 4,
        }
    }
}

impl fmt::Display for TimingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimingClass::Dsp56001 => "dsp56001",
            TimingClass::GenericRisc => "generic-risc",
            TimingClass::Microcontroller => "microcontroller",
        })
    }
}

/// A software resource: one processor executing one static schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    /// Human-readable instance name, unique within the target.
    pub name: String,
    /// Core clock in MHz (the DSP56001 in the paper ran at 20 MHz).
    pub clock_mhz: f64,
    /// Instruction-timing flavour.
    pub timing: TimingClass,
}

impl Processor {
    /// A 20 MHz Motorola DSP56001, the paper's software resource.
    #[must_use]
    pub fn dsp56001(name: impl Into<String>) -> Processor {
        Processor {
            name: name.into(),
            clock_mhz: 20.0,
            timing: TimingClass::Dsp56001,
        }
    }

    /// A generic 33 MHz RISC core, for ablation targets.
    #[must_use]
    pub fn generic_risc(name: impl Into<String>) -> Processor {
        Processor {
            name: name.into(),
            clock_mhz: 33.0,
            timing: TimingClass::GenericRisc,
        }
    }
}

/// A hardware resource: one FPGA or ASIC region with an area budget.
#[derive(Debug, Clone, PartialEq)]
pub struct HwResource {
    /// Human-readable instance name, unique within the target.
    pub name: String,
    /// Clock in MHz for logic mapped onto this resource.
    pub clock_mhz: f64,
    /// Area budget in CLBs (configurable logic blocks).
    pub clb_capacity: u32,
}

impl HwResource {
    /// A Xilinx XC4005 with 196 CLBs, as on the paper's board.
    #[must_use]
    pub fn xc4005(name: impl Into<String>) -> HwResource {
        HwResource {
            name: name.into(),
            clock_mhz: 16.0,
            clb_capacity: 196,
        }
    }
}

/// The shared static RAM used for memory-mapped communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    /// Instance name.
    pub name: String,
    /// Capacity in bytes (64 kB on the paper's board).
    pub size_bytes: u32,
    /// Base address of the co-synthesis memory-cell allocation region.
    pub base_address: u32,
    /// Additional wait cycles per read.
    pub read_wait: u8,
    /// Additional wait cycles per write.
    pub write_wait: u8,
}

impl Memory {
    /// The paper's 64 kB SRAM card, allocation base `0x1000`, 1 wait state.
    #[must_use]
    pub fn sram_64k(name: impl Into<String>) -> Memory {
        Memory {
            name: name.into(),
            size_bytes: 64 * 1024,
            base_address: 0x1000,
            read_wait: 1,
            write_wait: 1,
        }
    }
}

/// The system bus connecting processors, ASICs and memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    /// Instance name.
    pub name: String,
    /// Data width in bits; transfers are charged per word of this width.
    pub width_bits: u16,
    /// Cycles for one word transfer once the bus is granted.
    pub cycles_per_word: u8,
}

impl Bus {
    /// A 16-bit backplane bus as on the paper's prototyping board.
    #[must_use]
    pub fn backplane_16(name: impl Into<String>) -> Bus {
        Bus {
            name: name.into(),
            width_bits: 16,
            cycles_per_word: 2,
        }
    }
}

/// A complete target architecture: the co-design "board".
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Software resources.
    pub processors: Vec<Processor>,
    /// Hardware resources.
    pub hw: Vec<HwResource>,
    /// The shared memory.
    pub memory: Memory,
    /// The system bus.
    pub bus: Bus,
    /// Reference system clock in MHz used to convert cycles to time in
    /// reports (the controllers are clocked at this rate).
    pub system_clock_mhz: f64,
}

impl Target {
    /// The board of the paper's fuzzy-controller case study: one DSP56001,
    /// two XC4005 FPGAs, 64 kB SRAM, one 16-bit bus.
    #[must_use]
    pub fn fuzzy_board() -> Target {
        Target {
            processors: vec![Processor::dsp56001("dsp0")],
            hw: vec![HwResource::xc4005("fpga0"), HwResource::xc4005("fpga1")],
            memory: Memory::sram_64k("sram0"),
            bus: Bus::backplane_16("bus0"),
            system_clock_mhz: 16.0,
        }
    }

    /// A minimal single-processor, single-FPGA target for small examples.
    #[must_use]
    pub fn minimal() -> Target {
        Target {
            processors: vec![Processor::dsp56001("dsp0")],
            hw: vec![HwResource::xc4005("fpga0")],
            memory: Memory::sram_64k("sram0"),
            bus: Bus::backplane_16("bus0"),
            system_clock_mhz: 16.0,
        }
    }

    /// Total number of partitionable resources (processors + hardware).
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.processors.len() + self.hw.len()
    }

    /// Name of resource `r` (see [`crate::mapping::Resource`] for indexing).
    #[must_use]
    pub fn resource_name(&self, r: crate::mapping::Resource) -> &str {
        match r {
            crate::mapping::Resource::Software(i) => &self.processors[i].name,
            crate::mapping::Resource::Hardware(i) => &self.hw[i].name,
        }
    }

    /// All resources, software first, in a stable order.
    #[must_use]
    pub fn resources(&self) -> Vec<crate::mapping::Resource> {
        let mut v = Vec::with_capacity(self.resource_count());
        for i in 0..self.processors.len() {
            v.push(crate::mapping::Resource::Software(i));
        }
        for i in 0..self.hw.len() {
            v.push(crate::mapping::Resource::Hardware(i));
        }
        v
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "target: {} processor(s), {} hw resource(s), {} kB memory, {}-bit bus",
            self.processors.len(),
            self.hw.len(),
            self.memory.size_bytes / 1024,
            self.bus.width_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Op;
    use crate::mapping::Resource;

    #[test]
    fn fuzzy_board_matches_paper() {
        let t = Target::fuzzy_board();
        assert_eq!(t.processors.len(), 1);
        assert_eq!(t.hw.len(), 2);
        assert_eq!(t.hw[0].clb_capacity, 196);
        assert_eq!(t.memory.size_bytes, 64 * 1024);
        assert_eq!(t.resource_count(), 3);
    }

    #[test]
    fn dsp_mac_is_single_cycle() {
        assert_eq!(TimingClass::Dsp56001.op_cycles(Op::Mul), 1);
        assert!(TimingClass::GenericRisc.op_cycles(Op::Mul) > 1);
    }

    #[test]
    fn division_is_expensive_everywhere() {
        for t in [
            TimingClass::Dsp56001,
            TimingClass::GenericRisc,
            TimingClass::Microcontroller,
        ] {
            assert!(t.op_cycles(Op::Div) >= 10);
        }
    }

    #[test]
    fn resource_enumeration_is_stable() {
        let t = Target::fuzzy_board();
        assert_eq!(
            t.resources(),
            vec![
                Resource::Software(0),
                Resource::Hardware(0),
                Resource::Hardware(1)
            ]
        );
        assert_eq!(t.resource_name(Resource::Hardware(1)), "fpga1");
    }

    #[test]
    fn display_summarises() {
        let s = Target::fuzzy_board().to_string();
        assert!(s.contains("64 kB"));
        assert!(s.contains("16-bit"));
    }
}
