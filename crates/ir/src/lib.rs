//! Intermediate representation for the COOL hardware/software co-design flow.
//!
//! This crate provides the data structures that every other stage of the
//! reproduction of *"Synthesis of Communicating Controllers for Concurrent
//! Hardware/Software Systems"* (Niemann & Marwedel, DATE 1998) operates on:
//!
//! * the **partitioning graph** ([`PartitioningGraph`]) — nodes are functions
//!   of the system specification, edges are data transfers (paper Figure 2);
//! * **node behaviours** ([`behavior::Behavior`]) — side-effect free
//!   data-flow expressions, so that every node can be executed functionally;
//! * the **target architecture** ([`target::Target`]) — processors, hardware
//!   resources (FPGAs/ASICs), the shared memory and the system bus of the
//!   prototyping board used in the paper;
//! * a **mapping/colouring** ([`mapping::Mapping`]) of nodes onto resources,
//!   the output of hardware/software partitioning;
//! * a **reference evaluator** ([`eval`]) used as functional ground truth by
//!   the co-simulator;
//! * **stable structural hashing** ([`hash`]) — process-independent
//!   content digests over all of the above, the key material of the flow
//!   engine's stage cache;
//! * a **serde-free binary codec** ([`codec`]) — the canonical byte
//!   encoding the persistent stage cache serializes artifacts with.
//!
//! # Example
//!
//! ```
//! use cool_ir::prelude::*;
//!
//! # fn main() -> Result<(), cool_ir::IrError> {
//! let mut g = PartitioningGraph::new("adder");
//! let a = g.add_input("a", 16);
//! let b = g.add_input("b", 16);
//! let sum = g.add_function("sum", Behavior::binary(Op::Add))?;
//! let y = g.add_output("y", 16);
//! g.connect(a, 0, sum, 0, 16)?;
//! g.connect(b, 0, sum, 1, 16)?;
//! g.connect(sum, 0, y, 0, 16)?;
//! g.validate()?;
//!
//! let out = cool_ir::eval::evaluate(&g, &[("a", 2), ("b", 40)].into_iter()
//!     .map(|(k, v)| (k.to_string(), v)).collect())?;
//! assert_eq!(out["y"], 42);
//! # Ok(())
//! # }
//! ```

pub mod behavior;
pub mod codec;
pub mod error;
pub mod eval;
pub mod graph;
pub mod hash;
pub mod mapping;
pub mod objective;
pub mod par;
pub mod rng;
pub mod target;
pub mod topo;

pub use behavior::{Behavior, Expr, Op};
pub use error::IrError;
pub use graph::{Edge, EdgeId, Node, NodeId, NodeKind, PartitioningGraph};
pub use hash::{ContentHash, ContentHasher};
pub use mapping::{Mapping, Resource};
pub use objective::{BudgetConstraint, Objective};
pub use target::{Bus, HwResource, Memory, Processor, Target, TimingClass};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::behavior::{Behavior, Expr, Op};
    pub use crate::error::IrError;
    pub use crate::graph::{Edge, EdgeId, Node, NodeId, NodeKind, PartitioningGraph};
    pub use crate::mapping::{Mapping, Resource};
    pub use crate::objective::{BudgetConstraint, Objective};
    pub use crate::target::{Bus, HwResource, Memory, Processor, Target, TimingClass};
}
