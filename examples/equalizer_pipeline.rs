//! The 4-band equalizer of paper Figure 2, pushed through partitioning,
//! scheduling, STG generation/minimization, memory allocation and netlist
//! synthesis — printing the content of Figures 2, 3 and 4 along the way —
//! and finally run on an audio-like sample stream in three variants
//! (all-software, all-hardware, automatically partitioned).
//!
//! Run with `cargo run --release --example equalizer_pipeline`.

use std::collections::BTreeMap;
use std::error::Error;

use cool_repro::core::{FlowOptions, FlowSession};
use cool_repro::ir::{eval, Mapping, Resource, Target};
use cool_repro::spec::workloads;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = workloads::equalizer(4);
    let target = Target::fuzzy_board();

    // --- Figure 2: the partitioning graph with its colouring. ---
    let art = FlowSession::new(&graph)
        .target(target.clone())
        .options(FlowOptions::default())
        .run()?;
    println!("=== Figure 2: coloured partitioning graph ===");
    for (id, node) in graph.nodes() {
        let res = art.partition.mapping.resource(id);
        println!(
            "  {:<8} [{}] -> {}",
            node.name(),
            node.kind(),
            target.resource_name(res)
        );
    }
    println!(
        "\nstatic schedule:\n{}",
        art.schedule.to_gantt(&graph, &target)
    );

    // --- Figure 3: STG and memory allocation. ---
    println!("=== Figure 3: STG and memory allocation ===");
    println!("{}", art.stg_minimized.to_table(&target));
    println!(
        "minimization: {} -> {} states",
        art.minimize_stats.states_before, art.minimize_stats.states_after
    );
    println!("{}", art.memory_map.to_table(&graph));

    // --- Figure 4: the generated netlist. ---
    println!("=== Figure 4: generated netlist ===");
    println!("{}", art.netlist.to_inventory());

    // --- Run a sample stream through three implementations. ---
    let all_sw = Mapping::uniform(graph.node_count(), Resource::Software(0));
    let mut mixed = all_sw.clone();
    // Two band filters in hardware (one per FPGA — a whole band-pass
    // datapath is ~120 CLBs, so one fits each XC4005), the rest in
    // software: a classic accelerator split.
    for (i, band) in ["bpf0", "bpf1"].iter().enumerate() {
        mixed.assign(graph.node_by_name(band).unwrap(), Resource::Hardware(i % 2));
    }
    let with_mapping = |mapping: Mapping| {
        FlowSession::new(&graph)
            .target(target.clone())
            .options(FlowOptions::default())
            .with_mapping(mapping)
            .run()
    };
    let variants = vec![
        ("all-software", with_mapping(all_sw)?),
        ("bpf-in-hw", with_mapping(mixed)?),
        ("auto", art),
    ];

    // A synthetic "audio" burst: a decaying square wave.
    let stream: Vec<BTreeMap<String, i64>> = (0..16)
        .map(|k| {
            let s = if k % 4 < 2 {
                1000 - 50 * k
            } else {
                -(1000 - 50 * k)
            };
            eval::input_map([("x0", s), ("x1", s / 2), ("x2", s / 4)])
        })
        .collect();

    println!("=== stream processing comparison (16 samples) ===");
    println!(
        "{:<14} {:>12} {:>14} {:>10}",
        "variant", "cycles/sample", "bus transfers", "us/sample"
    );
    for (name, implementation) in &variants {
        let mut total_cycles = 0u64;
        let mut total_transfers = 0usize;
        for inputs in &stream {
            let r = implementation.simulate(inputs)?;
            // `simulate` already checks functional equivalence vs the spec.
            total_cycles += r.cycles;
            total_transfers += r.bus_transfers;
        }
        let per_sample = total_cycles / stream.len() as u64;
        println!(
            "{:<14} {:>12} {:>14} {:>10.2}",
            name,
            per_sample,
            total_transfers,
            implementation.cost.cycles_to_us(per_sample),
        );
    }
    println!("\nall variants computed identical outputs (checked against the reference)");
    Ok(())
}
