//! Print a generated workload from the zoo as a `.cool` spec.
//!
//! The committed specs under `examples/specs/` that mirror zoo members
//! are regenerated with this (the round-trip property suite in
//! `tests/workload_zoo.rs` guarantees the bytes are stable):
//!
//! ```bash
//! cargo run --example print_workload fsm48x4 > examples/specs/fsm48x4.cool
//! ```

use cool_repro::spec::{print_spec, workloads};

fn main() {
    let zoo = workloads::zoo();
    let name = std::env::args().nth(1).unwrap_or_default();
    match zoo.iter().find(|g| g.name() == name) {
        Some(g) => print!("{}", print_spec(g)),
        None => {
            let names: Vec<&str> = zoo.iter().map(|g| g.name()).collect();
            eprintln!(
                "usage: print_workload <name>\navailable: {}",
                names.join(", ")
            );
            std::process::exit(2);
        }
    }
}
