//! Quickstart: specify a tiny system, run the complete COOL flow, inspect
//! every artefact and validate the implementation by co-simulation.
//!
//! Run with `cargo run --example quickstart`.

use std::error::Error;

use cool_repro::core::{FlowOptions, FlowSession};
use cool_repro::ir::eval::{evaluate, input_map};
use cool_repro::ir::Target;
use cool_repro::spec;

const SPEC: &str = "
design notch;

input x0 : 16;
input x1 : 16;
input x2 : 16;

-- A second-order notch section: y = (x0 - 2 x1 + x2) * gain >> 4,
-- followed by an energy estimate e = y * y.
node diff  = expr(3) { (add (sub in0 (shl in1 1)) in2) };
node gain  = expr(1) { (shr (mul in0 12) 4) };
node energy = expr(1) { (mul in0 in0) };

output y : 16;
output e : 32;

connect x0 -> diff.0;
connect x1 -> diff.1;
connect x2 -> diff.2;
connect diff -> gain;
connect gain -> y;
connect gain -> energy;
connect energy -> e : 32;
";

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Parse the specification into a partitioning graph.
    let graph = spec::parse(SPEC)?;
    println!(
        "parsed `{}`: {} nodes, {} edges\n",
        graph.name(),
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Run the coupled partitioning + co-synthesis flow on the paper's
    //    prototyping board (DSP56001 + 2x XC4005 + 64 kB SRAM).
    let artifacts = FlowSession::new(&graph)
        .target(Target::fuzzy_board())
        .options(FlowOptions::default())
        .run()?;
    println!("{}", artifacts.report());

    // 3. Look at the generated implementation.
    println!("generated VHDL units:");
    for (name, source) in &artifacts.vhdl {
        println!("  {name} ({} lines)", source.lines().count());
    }
    for program in &artifacts.c_programs {
        println!(
            "generated C unit: {} ({} lines)",
            program.file_name,
            program.source.lines().count()
        );
    }
    println!();

    // 4. Validate: simulate the synthesized system and compare against the
    //    functional reference evaluation of the specification.
    let inputs = input_map([("x0", 100), ("x1", 40), ("x2", -8)]);
    let result = artifacts.simulate(&inputs)?;
    let reference = evaluate(&graph, &inputs)?;
    println!("simulation finished in {} cycles", result.cycles);
    println!(
        "  bus transfers: {}, bus utilization {:.1} %",
        result.bus_transfers,
        100.0 * result.bus_utilization()
    );
    for (name, value) in &result.outputs {
        println!("  {name} = {value} (reference {})", reference[name]);
    }
    assert_eq!(
        result.outputs, reference,
        "implementation must match the specification"
    );
    println!("\nimplementation matches the specification — quickstart OK");
    Ok(())
}
