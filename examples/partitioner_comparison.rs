//! Compare COOL's three partitioning algorithms — exact MILP,
//! MILP+heuristic clustering, and the genetic algorithm — on random
//! data-flow graphs of growing size, reporting solution quality (schedule
//! makespan) and solver work.
//!
//! Run with `cargo run --release --example partitioner_comparison`.

use std::error::Error;
use std::time::Instant;

use cool_repro::cost::CostModel;
use cool_repro::ir::{Objective, Target};
use cool_repro::partition::{self, GaOptions, HeuristicOptions, MilpOptions};
use cool_repro::spec::workloads::{random_dag, RandomDagConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let target = Target::fuzzy_board();
    println!(
        "{:>5} {:>16} {:>10} {:>10} {:>12}  claim",
        "nodes", "algorithm", "makespan", "ms", "work units"
    );
    for nodes in [10usize, 16, 24, 32] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);

        // Exact MILP only up to a size it solves in reasonable time. On
        // the largest exact instance a low communication weight makes
        // the root relaxation fractional (the branch & bound genuinely
        // branches) and a deliberately tight node budget then shows the
        // new truncation reporting: the result carries a quantified
        // "within x %" optimality gap instead of silently posing as the
        // optimum.
        if nodes <= 16 {
            let opts = if nodes == 16 {
                // This instance proves optimality at ~421 B&B nodes; a
                // 100-node budget truncates with a ~3 % certified gap.
                MilpOptions {
                    objective: Objective::blend(1.0, 0.1, 0.05),
                    max_nodes: 100,
                    ..MilpOptions::default()
                }
            } else {
                MilpOptions::default()
            };
            let t = Instant::now();
            let res = partition::milp::partition(&graph, &cost, &opts)?;
            report(
                nodes,
                "milp",
                res.makespan,
                t.elapsed().as_secs_f64(),
                res.work_units,
                &res.optimality_label(),
            );
        } else {
            println!(
                "{nodes:>5} {:>16} {:>10} {:>10} {:>12}",
                "milp", "-", "(skipped)", "-"
            );
        }

        let t = Instant::now();
        let res = partition::heuristic::partition(&graph, &cost, &HeuristicOptions::default())?;
        report(
            nodes,
            "milp+heuristic",
            res.makespan,
            t.elapsed().as_secs_f64(),
            res.work_units,
            &res.optimality_label(),
        );

        let t = Instant::now();
        let res = partition::genetic::partition(&graph, &cost, &GaOptions::default())?;
        report(
            nodes,
            "genetic",
            res.makespan,
            t.elapsed().as_secs_f64(),
            res.work_units,
            &res.optimality_label(),
        );

        // Baseline for context.
        let all_sw = partition::all_software(&graph);
        let (sw, _) = partition::evaluate(&graph, &all_sw, &cost, Default::default())?;
        report(nodes, "all-software", sw, 0.0, 0, "fixed");
        println!();
    }
    Ok(())
}

fn report(nodes: usize, algo: &str, makespan: u64, secs: f64, work: usize, claim: &str) {
    println!(
        "{nodes:>5} {algo:>16} {makespan:>10} {:>10.1} {work:>12}  {claim}",
        secs * 1e3
    );
}
