//! Compare COOL's three partitioning algorithms — exact MILP,
//! MILP+heuristic clustering, and the genetic algorithm — on random
//! data-flow graphs of growing size, reporting solution quality (schedule
//! makespan) and solver work.
//!
//! Run with `cargo run --release --example partitioner_comparison`.

use std::error::Error;
use std::time::Instant;

use cool_repro::cost::CostModel;
use cool_repro::ir::Target;
use cool_repro::partition::{self, GaOptions, HeuristicOptions, MilpOptions};
use cool_repro::spec::workloads::{random_dag, RandomDagConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let target = Target::fuzzy_board();
    println!(
        "{:>5} {:>16} {:>10} {:>10} {:>12}",
        "nodes", "algorithm", "makespan", "ms", "work units"
    );
    for nodes in [10usize, 16, 24, 32] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);

        // Exact MILP only up to a size it solves in reasonable time.
        if nodes <= 16 {
            let t = Instant::now();
            let res = partition::milp::partition(&graph, &cost, &MilpOptions::default())?;
            report(
                nodes,
                "milp",
                res.makespan,
                t.elapsed().as_secs_f64(),
                res.work_units,
            );
        } else {
            println!(
                "{nodes:>5} {:>16} {:>10} {:>10} {:>12}",
                "milp", "-", "(skipped)", "-"
            );
        }

        let t = Instant::now();
        let res = partition::heuristic::partition(&graph, &cost, &HeuristicOptions::default())?;
        report(
            nodes,
            "milp+heuristic",
            res.makespan,
            t.elapsed().as_secs_f64(),
            res.work_units,
        );

        let t = Instant::now();
        let res = partition::genetic::partition(&graph, &cost, &GaOptions::default())?;
        report(
            nodes,
            "genetic",
            res.makespan,
            t.elapsed().as_secs_f64(),
            res.work_units,
        );

        // Baseline for context.
        let all_sw = partition::all_software(&graph);
        let (sw, _) = partition::evaluate(&graph, &all_sw, &cost, Default::default())?;
        report(nodes, "all-software", sw, 0.0, 0);
        println!();
    }
    Ok(())
}

fn report(nodes: usize, algo: &str, makespan: u64, secs: f64, work: usize) {
    println!(
        "{nodes:>5} {algo:>16} {makespan:>10} {:>10.1} {work:>12}",
        secs * 1e3
    );
}
