//! The paper's case study: co-design of a fuzzy controller.
//!
//! Reproduces the results section: a 31-node fuzzy-controller partitioning
//! graph implemented on a board with one Motorola DSP56001, two Xilinx
//! XC4005 FPGAs (196 CLBs each) and 64 kB of SRAM. Several different
//! hardware/software partitions are pushed through the complete flow; for
//! each we report partition shape, makespan, FPGA usage and the per-stage
//! design-time breakdown (the paper: full flow ≤ ~60 min, > 90 % of it in
//! hardware synthesis).
//!
//! Run with `cargo run --release --example fuzzy_codesign`.

use std::error::Error;

use cool_repro::core::{FlowOptions, FlowSession, Partitioner};
use cool_repro::cost::CostModel;
use cool_repro::ir::eval::input_map;
use cool_repro::ir::Target;
use cool_repro::partition::{GaOptions, HeuristicOptions};
use cool_repro::spec::{print_spec, workloads};

fn main() -> Result<(), Box<dyn Error>> {
    let graph = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    println!("fuzzy controller case study");
    println!(
        "  specification: {} lines, partitioning graph: {} nodes / {} edges",
        print_spec(&graph).lines().count(),
        graph.node_count(),
        graph.edge_count()
    );
    println!("  target: {target}\n");

    // Several partitioning strategies = "different hardware/software
    // partitions of the fuzzy controller were implemented".
    let strategies: Vec<(&str, FlowOptions)> = vec![
        (
            "milp+heuristic",
            FlowOptions {
                partitioner: Partitioner::Heuristic(HeuristicOptions::default()),
                ..FlowOptions::default()
            },
        ),
        (
            "genetic",
            FlowOptions {
                partitioner: Partitioner::Genetic(GaOptions::default()),
                ..FlowOptions::default()
            },
        ),
        (
            "all-software",
            FlowOptions {
                partitioner: Partitioner::Fixed(cool_repro::core::all_software_mapping(&graph)),
                ..FlowOptions::default()
            },
        ),
    ];

    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>9} {:>9} {:>8}",
        "partitioner", "sw", "hw", "makespan", "fpga0", "fpga1", "hw-time%"
    );
    // One estimation pass serves every candidate partitioner: the engine
    // runs its `cost` stage as a seeded pass-through when the model is
    // pre-seeded via `with_cost`.
    let cost = CostModel::new(&graph, &target);
    for (name, options) in strategies {
        let art = FlowSession::new(&graph)
            .target(target.clone())
            .options(options)
            .with_cost(cost.clone())
            .run()?;
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>6}/196 {:>6}/196 {:>7.1}%",
            name,
            art.partition.software_nodes(&graph),
            art.partition.hardware_nodes(&graph),
            art.partition.makespan,
            art.partition.hw_area[0],
            art.partition.hw_area[1],
            100.0 * art.timings.hardware_fraction(),
        );

        // Every partition must implement the same control law: sweep the
        // input space and compare against the reference evaluator (done
        // inside `simulate`).
        for (e, d) in [(-120i64, -60i64), (-30, 30), (0, 0), (45, -45), (120, 110)] {
            let r = art.simulate(&input_map([("err", e), ("derr", d)]))?;
            assert!((0..=255).contains(&r.outputs["u"]));
        }
    }

    // Full detail for the headline partition.
    let art = FlowSession::new(&graph)
        .target(target.clone())
        .options(FlowOptions::default())
        .with_cost(cost)
        .run()?;
    println!(
        "\n--- detailed report ({} partitioning) ---",
        art.partition.algorithm
    );
    println!("{}", art.report());
    println!("memory map:\n{}", art.memory_map.to_table(&graph));
    println!("closed-loop response (err sweep at derr = 0):");
    for e in (-120..=120).step_by(40) {
        let r = art.simulate(&input_map([("err", e), ("derr", 0)]))?;
        println!(
            "  err {e:>5} -> u {:>4}  ({} cycles)",
            r.outputs["u"], r.cycles
        );
    }
    Ok(())
}
