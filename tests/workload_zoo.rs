//! Seeded property suite over the workload zoo generators.
//!
//! Every generator in `cool_spec::workloads` — in particular the
//! control-dominated state machines, the multi-rate streaming DSP
//! pyramids and the large seeded DAG families behind
//! [`workloads::zoo`] — must produce graphs that:
//!
//! * pass structural validation (acyclic, every port driven once), so
//!   `topo_order` exists and downstream stages can assume a DAG;
//! * round-trip the spec printer *byte-identically*
//!   (`print_spec` → `parse` → `print_spec`), so committed `.cool`
//!   files regenerated from a generator never churn;
//! * run the full flow without panic at `jobs = 1` and `jobs = 4`,
//!   generating identical bytes.

use cool_repro::core::{FlowOptions, FlowSession};
use cool_repro::ir::{topo, Target};
use cool_repro::spec::workloads;

fn zoo_and_small_instances() -> Vec<cool_repro::ir::PartitioningGraph> {
    let mut graphs = workloads::zoo();
    graphs.push(workloads::state_machine(2, 1));
    graphs.push(workloads::state_machine(12, 3));
    graphs.push(workloads::multirate(8, 3, 2));
    graphs.push(workloads::multirate(4, 1, 1));
    graphs
}

#[test]
fn every_generator_validates_and_topo_sorts() {
    let graphs = zoo_and_small_instances();
    let mut names = std::collections::BTreeSet::new();
    for g in &graphs {
        g.validate()
            .unwrap_or_else(|e| panic!("{} fails validation: {e}", g.name()));
        let order = topo::topo_order(g).unwrap();
        assert_eq!(order.len(), g.node_count(), "{}", g.name());
        assert!(
            names.insert(g.name().to_string()),
            "duplicate zoo name `{}`",
            g.name()
        );
    }
    // The zoo spans the promised 10–100× scale range.
    let sizes: Vec<usize> = workloads::zoo().iter().map(|g| g.node_count()).collect();
    assert!(
        sizes.iter().any(|&n| n >= 1000),
        "the zoo must reach the 100× tier, got sizes {sizes:?}"
    );
    assert!(
        sizes.iter().any(|&n| (100..1000).contains(&n)),
        "the zoo must cover the 10× tier, got sizes {sizes:?}"
    );
}

#[test]
fn every_generator_round_trips_the_spec_printer_byte_identically() {
    for g in zoo_and_small_instances() {
        let text = cool_repro::spec::print_spec(&g);
        let parsed = cool_repro::spec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: printed spec does not parse: {e}", g.name()));
        assert_eq!(parsed.node_count(), g.node_count(), "{}", g.name());
        let reprinted = cool_repro::spec::print_spec(&parsed);
        assert_eq!(
            text,
            reprinted,
            "{}: print → parse → print must be byte-identical",
            g.name()
        );
    }
}

#[test]
fn moderate_instances_run_the_full_flow_at_jobs_1_and_4() {
    for g in [
        workloads::state_machine(12, 3),
        workloads::multirate(8, 3, 2),
    ] {
        let runs: Vec<_> = [1usize, 4]
            .into_iter()
            .map(|jobs| {
                FlowSession::new(&g)
                    .target(Target::fuzzy_board())
                    .options(FlowOptions::quick())
                    .jobs(jobs)
                    .run()
                    .unwrap_or_else(|e| panic!("{} at jobs {jobs}: {e}", g.name()))
            })
            .collect();
        for art in &runs {
            assert!(!art.vhdl.is_empty(), "{}", g.name());
            assert!(!art.c_programs.is_empty(), "{}", g.name());
        }
        assert_eq!(
            runs[0].vhdl,
            runs[1].vhdl,
            "{}: VHDL must not depend on jobs",
            g.name()
        );
        assert_eq!(
            runs[0]
                .c_programs
                .iter()
                .map(|p| (&p.file_name, &p.source))
                .collect::<Vec<_>>(),
            runs[1]
                .c_programs
                .iter()
                .map(|p| (&p.file_name, &p.source))
                .collect::<Vec<_>>(),
            "{}: C programs must not depend on jobs",
            g.name()
        );
    }
}
