//! Property-based tests over the co-design pipeline's invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cool_repro::cost::{CommScheme, CostModel};
use cool_repro::ir::{Mapping, Resource, Target};
use cool_repro::spec::workloads::{random_dag, RandomDagConfig};

fn arb_graph() -> impl Strategy<Value = cool_repro::ir::PartitioningGraph> {
    (4usize..28, 0u64..500).prop_map(|(nodes, seed)| {
        random_dag(RandomDagConfig { nodes, inputs: 3, outputs: 2, seed })
    })
}

/// An arbitrary area-feasible mapping for a graph on the fuzzy board.
fn feasible_mapping(
    g: &cool_repro::ir::PartitioningGraph,
    cost: &CostModel,
    choices: &[u8],
) -> Mapping {
    let target = cost.target();
    let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
    let mut usage = vec![0u32; target.hw.len()];
    for (i, n) in g.function_nodes().into_iter().enumerate() {
        let c = choices[i % choices.len()] as usize % (1 + target.hw.len());
        if c > 0 {
            let h = c - 1;
            let area = cost.hw_area_clbs(n);
            if usage[h] + area <= target.hw[h].clb_capacity {
                usage[h] += area;
                m.assign(n, Resource::Hardware(h));
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any feasible mapping schedules without violating precedence,
    /// processor exclusivity or bus exclusivity.
    #[test]
    fn schedules_always_verify(g in arb_graph(), choices in prop::collection::vec(0u8..8, 1..16)) {
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        prop_assert!(s.verify(&g, &m).is_ok());
    }

    /// STG generation + minimization preserves well-formedness and never
    /// drops an execution state.
    #[test]
    fn stg_minimization_is_safe(g in arb_graph(), choices in prop::collection::vec(0u8..8, 1..16)) {
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let stg = cool_repro::stg::generate(&g, &m, &s);
        prop_assert!(stg.verify().is_ok());
        let (min, stats) = cool_repro::stg::minimize(&stg);
        prop_assert!(min.verify().is_ok());
        prop_assert!(stats.states_after <= stats.states_before);
        for n in g.function_nodes() {
            prop_assert!(min.states().iter().any(|st| st.kind == cool_repro::stg::StateKind::Exec(n)));
        }
    }

    /// Memory allocation: one cell per cut edge, no overlap (sequential),
    /// and the packed allocator never uses more bytes.
    #[test]
    fn memory_allocators_are_consistent(g in arb_graph(), choices in prop::collection::vec(0u8..8, 1..16)) {
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let seq = cool_repro::stg::allocate_memory(&g, &m, &target.memory, target.bus.width_bits).unwrap();
        let packed = cool_repro::stg::allocate_memory_packed(&g, &m, &s, &target.memory, target.bus.width_bits).unwrap();
        prop_assert_eq!(seq.cell_count(), m.cut_edges(&g).len());
        prop_assert_eq!(packed.cell_count(), seq.cell_count());
        prop_assert!(packed.bytes_used() <= seq.bytes_used());
        let mut cells: Vec<_> = seq.cells().to_vec();
        cells.sort_by_key(|c| c.address);
        for pair in cells.windows(2) {
            prop_assert!(pair[0].address + pair[0].bytes <= pair[1].address);
        }
    }

    /// The co-simulator matches the reference evaluator for every feasible
    /// mapping and random inputs (functional correctness of co-synthesis).
    #[test]
    fn simulation_matches_reference(
        g in arb_graph(),
        choices in prop::collection::vec(0u8..8, 1..16),
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in -1000i64..1000,
    ) {
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let map = cool_repro::stg::allocate_memory(&g, &m, &target.memory, target.bus.width_bits).unwrap();
        let sim = cool_repro::sim::Simulator::new(&g, &m, &s, &map, &cost, CommScheme::MemoryMapped);
        let inputs: BTreeMap<String, i64> =
            [("in0", a), ("in1", b), ("in2", c)].into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let run = sim.run(&inputs).unwrap();
        let reference = cool_repro::ir::eval::evaluate(&g, &inputs).unwrap();
        prop_assert_eq!(run.outputs, reference);
    }

    /// The GA always returns an area-feasible mapping.
    #[test]
    fn genetic_always_feasible(seed in 0u64..100) {
        let g = random_dag(RandomDagConfig { nodes: 14, seed, ..Default::default() });
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let opts = cool_repro::partition::GaOptions {
            population: 8, generations: 3, threads: 1, seed, ..Default::default()
        };
        let res = cool_repro::partition::genetic::partition(&g, &cost, &opts).unwrap();
        for (used, hw) in res.hw_area.iter().zip(&target.hw) {
            prop_assert!(used <= &hw.clb_capacity);
        }
    }

    /// Spec printing round-trips semantically for random graphs.
    #[test]
    fn spec_round_trip(seed in 0u64..200, a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        let g = random_dag(RandomDagConfig { nodes: 10, seed, ..Default::default() });
        let text = cool_repro::spec::print_spec(&g);
        let parsed = cool_repro::spec::parse(&text).unwrap();
        let inputs: BTreeMap<String, i64> =
            [("in0", a), ("in1", b), ("in2", c)].into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        prop_assert_eq!(
            cool_repro::ir::eval::evaluate(&g, &inputs).unwrap(),
            cool_repro::ir::eval::evaluate(&parsed, &inputs).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The ILP solver agrees with brute force on random small knapsacks.
    #[test]
    fn ilp_matches_brute_force(values in prop::collection::vec(1u32..20, 3..9), cap_frac in 0.2f64..0.9) {
        use cool_repro::ilp::{Cmp, Problem, SolveOptions};
        let n = values.len();
        let weights: Vec<f64> = values.iter().map(|&v| f64::from(v % 7 + 1)).collect();
        let cap = weights.iter().sum::<f64>() * cap_frac;
        let mut p = Problem::minimize();
        let vars: Vec<_> = values.iter().map(|&v| p.add_binary(-f64::from(v))).collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_constraint(&terms, Cmp::Le, cap);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        // Brute force.
        let mut best = 0f64;
        for mask in 0u32..(1 << n) {
            let (mut val, mut w) = (0f64, 0f64);
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    val += f64::from(values[i]);
                    w += weights[i];
                }
            }
            if w <= cap + 1e-9 && val > best {
                best = val;
            }
        }
        prop_assert!((sol.objective + best).abs() < 1e-6, "solver {} vs brute {}", -sol.objective, best);
    }
}
