//! Property-based tests over the co-design pipeline's invariants.
//!
//! The container builds without registry access, so instead of proptest
//! these properties run over deterministic seeded case streams drawn
//! from [`cool_repro::ir::rng::StdRng`]: every case is reproducible from
//! its printed seed.

use std::collections::BTreeMap;

use cool_repro::cost::{CommScheme, CostModel};
use cool_repro::ir::rng::StdRng;
use cool_repro::ir::{Mapping, Resource, Target};
use cool_repro::spec::workloads::{random_dag, RandomDagConfig};

fn case_graph(rng: &mut StdRng) -> cool_repro::ir::PartitioningGraph {
    let nodes = rng.random_range(4..28);
    let seed = rng.random_range(0..500) as u64;
    random_dag(RandomDagConfig {
        nodes,
        inputs: 3,
        outputs: 2,
        seed,
    })
}

fn case_choices(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(1..16);
    (0..len).map(|_| rng.random_range(0..8) as u8).collect()
}

/// An arbitrary area-feasible mapping for a graph on the fuzzy board.
fn feasible_mapping(
    g: &cool_repro::ir::PartitioningGraph,
    cost: &CostModel,
    choices: &[u8],
) -> Mapping {
    let target = cost.target();
    let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
    let mut usage = vec![0u32; target.hw.len()];
    for (i, n) in g.function_nodes().into_iter().enumerate() {
        let c = choices[i % choices.len()] as usize % (1 + target.hw.len());
        if c > 0 {
            let h = c - 1;
            let area = cost.hw_area_clbs(n);
            if usage[h] + area <= target.hw[h].clb_capacity {
                usage[h] += area;
                m.assign(n, Resource::Hardware(h));
            }
        }
    }
    m
}

/// Any feasible mapping schedules without violating precedence,
/// processor exclusivity or bus exclusivity.
#[test]
fn schedules_always_verify() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for case in 0..24 {
        let g = case_graph(&mut rng);
        let choices = case_choices(&mut rng);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        assert!(s.verify(&g, &m).is_ok(), "case {case} ({})", g.name());
    }
}

/// STG generation + minimization preserves well-formedness and never
/// drops an execution state.
#[test]
fn stg_minimization_is_safe() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for case in 0..24 {
        let g = case_graph(&mut rng);
        let choices = case_choices(&mut rng);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let stg = cool_repro::stg::generate(&g, &m, &s);
        assert!(stg.verify().is_ok(), "case {case}");
        let (min, stats) = cool_repro::stg::minimize(&stg);
        assert!(min.verify().is_ok(), "case {case}");
        assert!(stats.states_after <= stats.states_before, "case {case}");
        for n in g.function_nodes() {
            assert!(
                min.states()
                    .iter()
                    .any(|st| st.kind == cool_repro::stg::StateKind::Exec(n)),
                "case {case}: exec state of {n} lost"
            );
        }
    }
}

/// Memory allocation: one cell per cut edge, no overlap (sequential),
/// and the packed allocator never uses more bytes.
#[test]
fn memory_allocators_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for case in 0..24 {
        let g = case_graph(&mut rng);
        let choices = case_choices(&mut rng);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let seq = cool_repro::stg::allocate_memory(&g, &m, &target.memory, target.bus.width_bits)
            .unwrap();
        let packed = cool_repro::stg::allocate_memory_packed(
            &g,
            &m,
            &s,
            &target.memory,
            target.bus.width_bits,
        )
        .unwrap();
        assert_eq!(seq.cell_count(), m.cut_edges(&g).len(), "case {case}");
        assert_eq!(packed.cell_count(), seq.cell_count(), "case {case}");
        assert!(packed.bytes_used() <= seq.bytes_used(), "case {case}");
        let mut cells: Vec<_> = seq.cells().to_vec();
        cells.sort_by_key(|c| c.address);
        for pair in cells.windows(2) {
            assert!(
                pair[0].address + pair[0].bytes <= pair[1].address,
                "case {case}"
            );
        }
    }
}

/// The co-simulator matches the reference evaluator for every feasible
/// mapping and random inputs (functional correctness of co-synthesis).
#[test]
fn simulation_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for case in 0..24 {
        let g = case_graph(&mut rng);
        let choices = case_choices(&mut rng);
        let (a, b, c) = (
            rng.random_range(0..2000) as i64 - 1000,
            rng.random_range(0..2000) as i64 - 1000,
            rng.random_range(0..2000) as i64 - 1000,
        );
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let m = feasible_mapping(&g, &cost, &choices);
        let s = cool_repro::schedule::schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let map = cool_repro::stg::allocate_memory(&g, &m, &target.memory, target.bus.width_bits)
            .unwrap();
        let sim =
            cool_repro::sim::Simulator::new(&g, &m, &s, &map, &cost, CommScheme::MemoryMapped);
        let inputs: BTreeMap<String, i64> = [("in0", a), ("in1", b), ("in2", c)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let run = sim.run(&inputs).unwrap();
        let reference = cool_repro::ir::eval::evaluate(&g, &inputs).unwrap();
        assert_eq!(run.outputs, reference, "case {case}");
    }
}

/// The GA always returns an area-feasible mapping.
#[test]
fn genetic_always_feasible() {
    for seed in (0u64..100).step_by(7) {
        let g = random_dag(RandomDagConfig {
            nodes: 14,
            seed,
            ..Default::default()
        });
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let opts = cool_repro::partition::GaOptions {
            population: 8,
            generations: 3,
            threads: 1,
            seed,
            ..Default::default()
        };
        let res = cool_repro::partition::genetic::partition(&g, &cost, &opts).unwrap();
        for (used, hw) in res.hw_area.iter().zip(&target.hw) {
            assert!(used <= &hw.clb_capacity, "seed {seed}");
        }
    }
}

/// Spec printing round-trips semantically for random graphs.
#[test]
fn spec_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for case in 0..24 {
        let seed = rng.random_range(0..200) as u64;
        let (a, b, c) = (
            rng.random_range(0..100) as i64 - 50,
            rng.random_range(0..100) as i64 - 50,
            rng.random_range(0..100) as i64 - 50,
        );
        let g = random_dag(RandomDagConfig {
            nodes: 10,
            seed,
            ..Default::default()
        });
        let text = cool_repro::spec::print_spec(&g);
        let parsed = cool_repro::spec::parse(&text).unwrap();
        let inputs: BTreeMap<String, i64> = [("in0", a), ("in1", b), ("in2", c)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(
            cool_repro::ir::eval::evaluate(&g, &inputs).unwrap(),
            cool_repro::ir::eval::evaluate(&parsed, &inputs).unwrap(),
            "case {case} (seed {seed})"
        );
    }
}

/// The ILP solver agrees with brute force on random small knapsacks.
#[test]
fn ilp_matches_brute_force() {
    use cool_repro::ilp::{Cmp, Problem, SolveOptions};
    let mut rng = StdRng::seed_from_u64(0x5eed_0006);
    for case in 0..64 {
        let n = rng.random_range(3..9);
        let values: Vec<u32> = (0..n).map(|_| rng.random_range(1..20) as u32).collect();
        let cap_frac = 0.2 + 0.7 * rng.random_f64();
        let weights: Vec<f64> = values.iter().map(|&v| f64::from(v % 7 + 1)).collect();
        let cap = weights.iter().sum::<f64>() * cap_frac;
        let mut p = Problem::minimize();
        let vars: Vec<_> = values
            .iter()
            .map(|&v| p.add_binary(-f64::from(v)))
            .collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_constraint(&terms, Cmp::Le, cap);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        // Brute force.
        let mut best = 0f64;
        for mask in 0u32..(1 << n) {
            let (mut val, mut w) = (0f64, 0f64);
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    val += f64::from(values[i]);
                    w += weights[i];
                }
            }
            if w <= cap + 1e-9 && val > best {
                best = val;
            }
        }
        assert!(
            (sol.objective + best).abs() < 1e-6,
            "case {case}: solver {} vs brute {best}",
            -sol.objective
        );
    }
}
