//! The paper targets "multi-processor and multi-ASIC target
//! architectures"; these tests exercise a board with two processors plus
//! two FPGAs end-to-end.

use cool_repro::core::{FlowOptions, FlowSession};
use cool_repro::cost::{CommScheme, CostModel};
use cool_repro::ir::eval::{evaluate, input_map};
use cool_repro::ir::{Bus, HwResource, Memory, Processor, Resource, Target};
use cool_repro::spec::workloads;

fn two_cpu_board() -> Target {
    Target {
        processors: vec![
            Processor::dsp56001("dsp0"),
            Processor::generic_risc("risc0"),
        ],
        hw: vec![HwResource::xc4005("fpga0"), HwResource::xc4005("fpga1")],
        memory: Memory::sram_64k("sram0"),
        bus: Bus::backplane_16("bus0"),
        system_clock_mhz: 16.0,
    }
}

#[test]
fn fuzzy_splits_across_two_processors() {
    let g = workloads::fuzzy_controller();
    let target = two_cpu_board();
    let cost = CostModel::new(&g, &target);
    let mut mapping = cool_repro::partition::all_software(&g);
    // err-side fuzzification on the DSP, derr side on the RISC, defuzz in
    // hardware: a three-way split.
    for (i, n) in g.function_nodes().into_iter().enumerate() {
        let name = g.node(n).unwrap().name().to_string();
        if name.starts_with("m_derr") {
            mapping.assign(n, Resource::Software(1));
        } else if name == "defuzz" {
            mapping.assign(n, Resource::Hardware(0));
        } else if i % 7 == 0 && name.starts_with("rule") {
            mapping.assign(n, Resource::Software(1));
        }
    }
    let schedule =
        cool_repro::schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
    schedule.verify(&g, &mapping).unwrap();
    // Both processors actually execute work.
    assert!(!schedule.order_on(Resource::Software(0)).is_empty());
    assert!(schedule
        .order_on(Resource::Software(1))
        .iter()
        .any(|&n| g.node(n).unwrap().kind() == cool_repro::ir::NodeKind::Function));

    let art = FlowSession::new(&g)
        .target(target.clone())
        .options(FlowOptions::quick())
        .with_mapping(mapping)
        .run()
        .unwrap();
    // One C program per processor that hosts nodes.
    assert_eq!(art.c_programs.len(), 2);
    // Functional equivalence across the input space.
    for (e, d) in [(-100i64, 30i64), (0, 0), (64, -64), (120, 90)] {
        let ins = input_map([("err", e), ("derr", d)]);
        let r = art.simulate(&ins).unwrap();
        assert_eq!(r.outputs, evaluate(&g, &ins).unwrap());
    }
}

#[test]
fn processors_execute_concurrently() {
    // Two independent chains mapped to two different processors must
    // overlap: the makespan is far below the serialized sum.
    use cool_repro::ir::{Behavior, Op, PartitioningGraph};
    let mut g = PartitioningGraph::new("parallel");
    for c in 0..2 {
        let x = g.add_input(format!("x{c}"), 16);
        let mut prev = x;
        for k in 0..6 {
            let f = g
                .add_function(format!("f{c}_{k}"), Behavior::binary(Op::Div))
                .unwrap();
            g.connect(prev, 0, f, 0, 16).unwrap();
            g.connect(x, 0, f, 1, 16).unwrap();
            prev = f;
        }
        let y = g.add_output(format!("y{c}"), 16);
        g.connect(prev, 0, y, 0, 16).unwrap();
    }
    g.validate().unwrap();
    let target = two_cpu_board();
    let cost = CostModel::new(&g, &target);

    let single = cool_repro::partition::all_software(&g);
    let mut dual = single.clone();
    for n in g.function_nodes() {
        if g.node(n).unwrap().name().starts_with("f1_") {
            dual.assign(n, Resource::Software(1));
        }
    }
    let s1 = cool_repro::schedule::schedule(&g, &single, &cost, CommScheme::MemoryMapped).unwrap();
    let s2 = cool_repro::schedule::schedule(&g, &dual, &cost, CommScheme::MemoryMapped).unwrap();
    s2.verify(&g, &dual).unwrap();
    assert!(
        s2.makespan() < s1.makespan(),
        "two processors must beat one: {} vs {}",
        s2.makespan(),
        s1.makespan()
    );
}
