//! Programmatic checks of the paper's headline artefacts — the assertions
//! behind EXPERIMENTS.md, so regressions in any reproduced claim fail CI.

use cool_repro::core::{FlowArtifacts, FlowError, FlowOptions, FlowSession};
use cool_repro::cost::CostModel;
use cool_repro::ir::{PartitioningGraph, Target};
use cool_repro::rtl::ComponentKind;
use cool_repro::spec::workloads;

fn run_flow(
    g: &PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
) -> Result<FlowArtifacts, FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .run()
}

/// RES1: "a partitioning graph containing 31 nodes".
#[test]
fn res1_fuzzy_graph_has_31_nodes() {
    assert_eq!(workloads::fuzzy_controller().node_count(), 31);
}

/// RES1: the target board is 1 DSP + 2×196-CLB FPGAs + 64 kB SRAM.
#[test]
fn res1_board_matches_paper() {
    let t = Target::fuzzy_board();
    assert_eq!(t.processors.len(), 1);
    assert_eq!(t.hw.len(), 2);
    assert!(t.hw.iter().all(|h| h.clb_capacity == 196));
    assert_eq!(t.memory.size_bytes, 65536);
}

/// FIG3: the raw STG has exactly 3 global states, one reset per used
/// resource and one w/x/d triple per function node; minimization shrinks
/// it without losing any execution state.
#[test]
fn fig3_stg_inventory_and_minimization() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let cost = CostModel::new(&g, &target);
    let mut mapping = cool_repro::partition::all_software(&g);
    // A deterministic mixed partition within area budget.
    let mut budget = [196u32, 196u32];
    for n in g.function_nodes() {
        let area = cost.hw_area_clbs(n);
        if let Some(h) = (0..2).find(|&h| budget[h] >= area) {
            if n.index() % 3 == 0 {
                budget[h] -= area;
                mapping.assign(n, cool_repro::ir::Resource::Hardware(h));
            }
        }
    }
    let sched = cool_repro::schedule::schedule(&g, &mapping, &cost, Default::default()).unwrap();
    let stg = cool_repro::stg::generate(&g, &mapping, &sched);
    let used_resources: std::collections::BTreeSet<_> = g
        .function_nodes()
        .iter()
        .map(|&n| mapping.resource(n))
        .collect();
    assert_eq!(
        stg.state_count(),
        3 + used_resources.len() + 3 * g.function_nodes().len()
    );
    let (min, stats) = cool_repro::stg::minimize(&stg);
    assert!(
        stats.reduction() > 0.15,
        "reduction only {:.2}",
        stats.reduction()
    );
    for n in g.function_nodes() {
        assert!(min
            .states()
            .iter()
            .any(|s| s.kind == cool_repro::stg::StateKind::Exec(n)));
    }
}

/// FIG4: the netlist contains every component class the figure shows.
#[test]
fn fig4_netlist_component_classes() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &FlowOptions::quick()).unwrap();
    let nl = &art.netlist;
    assert_eq!(nl.count_kind(|k| *k == ComponentKind::SystemController), 1);
    assert_eq!(nl.count_kind(|k| *k == ComponentKind::IoController), 1);
    assert_eq!(nl.count_kind(|k| *k == ComponentKind::BusArbiter), 1);
    assert_eq!(nl.count_kind(|k| *k == ComponentKind::Memory), 1);
    assert_eq!(
        nl.count_kind(|k| matches!(k, ComponentKind::HwBlock(_))),
        art.partition.hardware_nodes(&g)
    );
}

/// RES3: with full-effort synthesis, the hardware-synthesis stage
/// dominates the flow (the paper reports > 90 %; we assert the dominant-
/// stage property with margin for debug-build noise).
#[test]
fn res3_hardware_synthesis_dominates() {
    let g = workloads::equalizer(2);
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &FlowOptions::default()).unwrap();
    let f = art.timings.hardware_fraction();
    assert!(f > 0.5, "hardware synthesis fraction only {:.2}", f);
    let t = &art.timings;
    let others = [
        t.estimation,
        t.partitioning,
        t.scheduling,
        t.cosynthesis,
        t.software_synthesis,
    ];
    assert!(
        others.iter().all(|&d| d <= t.hardware_synthesis),
        "hardware synthesis must be the single largest stage"
    );
}

/// The placement stand-in must exist for every FPGA that hosts logic and
/// must have improved (or preserved) wirelength.
#[test]
fn placement_results_are_sane() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &FlowOptions::default()).unwrap();
    assert!(
        !art.placements.is_empty(),
        "device 0 always gets the system controller"
    );
    for (res, placed) in &art.placements {
        assert!(res.is_hardware());
        assert!(placed.wirelength <= placed.initial_wirelength);
    }
}

/// Every VHDL unit of a full flow passes the structural checker, and the
/// datapath controllers cover every FPGA with hardware nodes.
#[test]
fn vhdl_units_cover_all_controllers() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &FlowOptions::default()).unwrap();
    for (name, unit) in &art.vhdl {
        cool_repro::rtl::vhdl::check_well_formed(unit).unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
    }
    let hw_resources: std::collections::BTreeSet<_> = g
        .function_nodes()
        .iter()
        .map(|&n| art.partition.mapping.resource(n))
        .filter(|r| r.is_hardware())
        .collect();
    for r in hw_resources {
        let name = target.resource_name(r);
        assert!(
            art.vhdl
                .iter()
                .any(|(f, _)| f == &format!("dpctl_{name}.vhd")),
            "missing datapath controller unit for {name}"
        );
    }
}
