//! End-to-end integration tests: every workload through the complete COOL
//! flow, with functional equivalence between the synthesized system and
//! the specification checked by co-simulation.

use std::collections::BTreeMap;

use cool_repro::core::{FlowArtifacts, FlowError, FlowOptions, FlowSession, Partitioner};
use cool_repro::ir::eval::{evaluate, input_map};
use cool_repro::ir::{Mapping, PartitioningGraph, Resource, Target};
use cool_repro::partition::GaOptions;
use cool_repro::spec::workloads;

fn quick() -> FlowOptions {
    FlowOptions::quick()
}

fn run_flow(
    g: &PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
) -> Result<FlowArtifacts, FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .run()
}

fn run_flow_with_mapping(
    g: &PartitioningGraph,
    target: &Target,
    mapping: Mapping,
    options: &FlowOptions,
) -> Result<FlowArtifacts, FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .with_mapping(mapping)
        .run()
}

#[test]
fn equalizer_flow_end_to_end() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &quick()).unwrap();
    // Artefact inventory.
    assert!(art.vhdl.iter().any(|(n, _)| n == "system_controller.vhd"));
    assert!(art.vhdl.iter().any(|(n, _)| n.ends_with("_top.vhd")));
    assert!(art.netlist.components.len() >= 4);
    // Functional equivalence over a stream.
    for k in 0..8i64 {
        let ins = input_map([("x0", 100 * k), ("x1", -30 * k), ("x2", 7 * k)]);
        let r = art.simulate(&ins).unwrap();
        assert_eq!(r.outputs, evaluate(&g, &ins).unwrap());
    }
}

#[test]
fn fuzzy_flow_with_all_three_partitioners() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let options = [
        FlowOptions {
            partitioner: Partitioner::Heuristic(Default::default()),
            ..quick()
        },
        FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 8,
                generations: 3,
                threads: 1,
                ..Default::default()
            }),
            ..quick()
        },
        FlowOptions {
            partitioner: Partitioner::Fixed(cool_repro::core::all_software_mapping(&g)),
            ..quick()
        },
    ];
    let probe = input_map([("err", 70), ("derr", -20)]);
    let reference = evaluate(&g, &probe).unwrap();
    for opts in options {
        let art = run_flow(&g, &target, &opts).unwrap();
        // Area feasibility on the paper's board.
        for (used, hw) in art.partition.hw_area.iter().zip(&target.hw) {
            assert!(used <= &hw.clb_capacity);
        }
        let r = art.simulate(&probe).unwrap();
        assert_eq!(r.outputs, reference, "partitioner changed semantics");
    }
}

#[test]
fn hardware_accelerates_division_with_direct_links() {
    // On the DSP56001 model, MAC-style code is nearly free in software, so
    // hardware only pays off for operations the processor does badly —
    // division — and when co-synthesis inserts direct communication links
    // instead of memory-mapped round trips. This test pins exactly that
    // crossover, the same story the paper's fuzzy defuzzifier tells.
    use cool_repro::ir::{Behavior, Op, PartitioningGraph};
    let mut g = PartitioningGraph::new("dividers");
    let mut outs = Vec::new();
    for i in 0..4 {
        let a = g.add_input(format!("a{i}"), 16);
        let b = g.add_input(format!("b{i}"), 16);
        let d = g
            .add_function(format!("div{i}"), Behavior::binary(Op::Div))
            .unwrap();
        g.connect(a, 0, d, 0, 16).unwrap();
        g.connect(b, 0, d, 1, 16).unwrap();
        let y = g.add_output(format!("y{i}"), 16);
        g.connect(d, 0, y, 0, 16).unwrap();
        outs.push(y);
    }
    g.validate().unwrap();
    let target = Target::fuzzy_board();
    let all_sw = Mapping::uniform(g.node_count(), Resource::Software(0));
    let mut hw = all_sw.clone();
    for (i, n) in g.function_nodes().into_iter().enumerate() {
        hw.assign(n, Resource::Hardware(i % 2));
    }
    let direct = FlowOptions {
        scheme: cool_repro::cost::CommScheme::Direct,
        ..quick()
    };
    let sw_art = run_flow_with_mapping(&g, &target, all_sw, &direct).unwrap();
    let hw_art = run_flow_with_mapping(&g, &target, hw, &direct).unwrap();
    let ins: BTreeMap<String, i64> = (0..4)
        .flat_map(|i| {
            [
                (format!("a{i}"), 1000 + i64::from(i)),
                (format!("b{i}"), 3 + i64::from(i)),
            ]
        })
        .collect();
    let sw_run = sw_art.simulate(&ins).unwrap();
    let hw_run = hw_art.simulate(&ins).unwrap();
    assert_eq!(sw_run.outputs, hw_run.outputs);
    assert!(
        hw_run.cycles < sw_run.cycles,
        "hardware {} vs software {}",
        hw_run.cycles,
        sw_run.cycles
    );
}

#[test]
fn parsed_spec_flows_like_generated_graph() {
    // Round-trip: print the fuzzy workload to spec text, parse it back,
    // run the flow on the parsed graph.
    let original = workloads::fuzzy_controller();
    let text = cool_repro::spec::print_spec(&original);
    let parsed = cool_repro::spec::parse(&text).unwrap();
    let target = Target::fuzzy_board();
    let art = run_flow(&parsed, &target, &quick()).unwrap();
    let ins = input_map([("err", -64), ("derr", 32)]);
    assert_eq!(
        art.simulate(&ins).unwrap().outputs,
        evaluate(&original, &ins).unwrap()
    );
}

#[test]
fn minimization_never_loses_exec_states() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &quick()).unwrap();
    for n in g.function_nodes() {
        assert!(
            art.stg_minimized
                .states()
                .iter()
                .any(|s| s.kind == cool_repro::stg::StateKind::Exec(n)),
            "minimized STG lost the execution state of {n}"
        );
    }
    assert!(art.minimize_stats.states_after < art.minimize_stats.states_before);
}

#[test]
fn schedule_and_simulation_agree_on_magnitude() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let art = run_flow(&g, &target, &quick()).unwrap();
    let r = art
        .simulate(&input_map([("x0", 1), ("x1", 2), ("x2", 3)]))
        .unwrap();
    let predicted = art.schedule.makespan();
    assert!(
        r.cycles <= predicted * 3 && predicted <= r.cycles.max(1) * 3,
        "simulated {} vs scheduled {predicted}",
        r.cycles
    );
}

#[test]
fn generated_code_references_every_cut_edge_cell() {
    let g = workloads::fuzzy_controller();
    let target = Target::fuzzy_board();
    let mut mapping = cool_repro::core::all_software_mapping(&g);
    mapping.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
    let art = run_flow_with_mapping(&g, &target, mapping, &quick()).unwrap();
    let all_c: String = art.c_programs.iter().map(|p| p.source.as_str()).collect();
    for cell in art.memory_map.cells() {
        let e = g.edge(cell.edge).unwrap();
        let touches_sw = art.partition.mapping.resource(e.src).is_software()
            || art.partition.mapping.resource(e.dst).is_software();
        if touches_sw {
            assert!(
                all_c.contains(&format!("0x{:04x}u", cell.address)),
                "cell 0x{:04x} unused by generated C",
                cell.address
            );
        }
    }
}
