//! COOL reproduction — umbrella crate.
//!
//! Re-exports every subsystem of the reproduction of *"Synthesis of
//! Communicating Controllers for Concurrent Hardware/Software Systems"*
//! (Niemann & Marwedel, DATE 1998) so examples and integration tests can
//! depend on a single crate:
//!
//! * [`ir`] — partitioning-graph IR, target model, reference evaluator
//! * [`spec`] — specification language + workload generators
//! * [`ilp`] — the MILP solver substrate
//! * [`cost`] — software/hardware/communication cost models
//! * [`partition`] — MILP / heuristic / genetic partitioners
//! * [`schedule`] — static list scheduling
//! * [`stg`] — STG generation, minimization, memory allocation
//! * [`hls`] — Oscar-style high-level synthesis
//! * [`rtl`] — communicating controllers, netlist, VHDL
//! * [`codegen`] — C generation for software partitions
//! * [`sim`] — the cycle-level board stand-in
//! * [`core`] — the end-to-end COOL design flow
//!
//! Start with [`core::FlowSession`]:
//!
//! ```
//! use cool_repro::core::{FlowOptions, FlowSession};
//! use cool_repro::ir::Target;
//! use cool_repro::spec::workloads;
//!
//! # fn main() -> Result<(), cool_repro::core::FlowError> {
//! let graph = workloads::equalizer(2);
//! let artifacts = FlowSession::new(&graph)
//!     .target(Target::fuzzy_board())
//!     .options(FlowOptions::quick())
//!     .run()?;
//! println!("{}", artifacts.report());
//! # Ok(())
//! # }
//! ```
//!
//! A board family (one specification, several hardware budgets, one
//! shared cost model) is `.targets([..]).run_family()`; a partial flow
//! (stop after any stage) is `.run_to(slot)`.

pub use cool_codegen as codegen;
pub use cool_core as core;
pub use cool_cost as cost;
pub use cool_hls as hls;
pub use cool_ilp as ilp;
pub use cool_ir as ir;
pub use cool_partition as partition;
pub use cool_rtl as rtl;
pub use cool_schedule as schedule;
pub use cool_sim as sim;
pub use cool_spec as spec;
pub use cool_stg as stg;
